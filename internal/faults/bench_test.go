package faults

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/substar"
)

func BenchmarkSeparatingPositions(b *testing.B) {
	for n := 6; n <= 9; n++ {
		rng := rand.New(rand.NewSource(int64(n)))
		fs := RandomVertices(n, MaxTolerated(n), rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := fs.SeparatingPositions(); !ok {
					b.Fatal("separation failed")
				}
			}
		})
	}
}

func BenchmarkCountIn(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	fs := RandomVertices(8, 5, rng)
	positions, _ := fs.SeparatingPositions()
	// One representative block pattern.
	blocks := substar.Whole(8).PartitionSeq(positions)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fs.CountIn(blocks[i%len(blocks)])
	}
}
