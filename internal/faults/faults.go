// Package faults models vertex and edge faults in a star graph and
// implements the paper's Lemma 2: the greedy choice of partition
// positions a1, ..., a_{n-4} under which every resulting 4-dimensional
// substar contains at most one vertex fault. It also provides the fault
// generators used by the evaluation harness: uniform, same-partite
// (the worst case that makes the paper's bound tight), clustered (the
// regime of the Latifi-Bagherzadeh baseline) and adversarially spread.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/substar"
)

// Edge is an undirected edge of S_n, stored with U the smaller code so
// that Edge values compare equal regardless of orientation.
type Edge struct {
	U, V perm.Code
}

// NewEdge normalizes the endpoint order.
func NewEdge(u, v perm.Code) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Set is a collection of vertex and edge faults in S_n. The zero value
// is unusable; construct with NewSet.
type Set struct {
	n        int
	vertices map[perm.Code]bool
	edges    map[Edge]bool
	vlist    []perm.Code // insertion-ordered, deduplicated
	elist    []Edge
}

// NewSet returns an empty fault set for S_n.
func NewSet(n int) *Set {
	return &Set{
		n:        n,
		vertices: make(map[perm.Code]bool),
		edges:    make(map[Edge]bool),
	}
}

// N returns the dimension of the host graph.
func (s *Set) N() int { return s.n }

// AddVertex marks v faulty. Adding a vertex twice is a no-op.
func (s *Set) AddVertex(v perm.Code) error {
	if !v.Valid(s.n) {
		return fmt.Errorf("faults: %#v is not a vertex of S_%d", v, s.n)
	}
	if s.vertices[v] {
		return nil
	}
	s.vertices[v] = true
	s.vlist = append(s.vlist, v)
	return nil
}

// AddVertexString marks the vertex written in permutation notation
// (e.g. "21345") faulty.
func (s *Set) AddVertexString(str string) error {
	p, err := perm.Parse(str)
	if err != nil {
		return err
	}
	if p.N() != s.n {
		return fmt.Errorf("faults: %q has dimension %d, want %d", str, p.N(), s.n)
	}
	return s.AddVertex(perm.Pack(p))
}

// AddEdge marks the edge {u, v} faulty. The endpoints themselves remain
// healthy. Adding an edge twice is a no-op.
func (s *Set) AddEdge(u, v perm.Code) error {
	if !perm.Adjacent(u, v, s.n) {
		return fmt.Errorf("faults: %s and %s are not adjacent in S_%d",
			u.StringN(s.n), v.StringN(s.n), s.n)
	}
	e := NewEdge(u, v)
	if s.edges[e] {
		return nil
	}
	s.edges[e] = true
	s.elist = append(s.elist, e)
	return nil
}

// HasVertex reports whether v is a faulty vertex.
func (s *Set) HasVertex(v perm.Code) bool { return s.vertices[v] }

// HasEdge reports whether the edge {u, v} is faulty.
func (s *Set) HasEdge(u, v perm.Code) bool { return s.edges[NewEdge(u, v)] }

// NumVertices returns |Fv|.
func (s *Set) NumVertices() int { return len(s.vlist) }

// NumEdges returns |Fe|.
func (s *Set) NumEdges() int { return len(s.elist) }

// Vertices returns the faulty vertices in insertion order. The caller
// must not modify the returned slice.
func (s *Set) Vertices() []perm.Code { return s.vlist }

// Edges returns the faulty edges in insertion order. The caller must not
// modify the returned slice.
func (s *Set) Edges() []Edge { return s.elist }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.n)
	for _, v := range s.vlist {
		c.AddVertex(v)
	}
	for _, e := range s.elist {
		c.edges[e] = true
		c.elist = append(c.elist, e)
	}
	return c
}

// CountIn returns the number of faulty vertices lying inside the given
// substar pattern.
func (s *Set) CountIn(p substar.Pattern) int {
	k := 0
	for _, v := range s.vlist {
		if p.Contains(v) {
			k++
		}
	}
	return k
}

// FaultyIn appends the faulty vertices inside pattern p to dst.
func (s *Set) FaultyIn(p substar.Pattern, dst []perm.Code) []perm.Code {
	for _, v := range s.vlist {
		if p.Contains(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// IntraEdgesIn appends to dst the faulty edges whose two endpoints both
// lie inside pattern p.
func (s *Set) IntraEdgesIn(p substar.Pattern, dst []Edge) []Edge {
	for _, e := range s.elist {
		if p.Contains(e.U) && p.Contains(e.V) {
			dst = append(dst, e)
		}
	}
	return dst
}

// String summarizes the set for diagnostics.
func (s *Set) String() string {
	return fmt.Sprintf("faults.Set{n=%d, |Fv|=%d, |Fe|=%d}", s.n, len(s.vlist), len(s.elist))
}

// SeparatingPositions implements Lemma 2. It returns a sequence of
// n-4 distinct positions a1, ..., a_{n-4} (each in 2..n) such that after
// the (a1, ..., a_{n-4})-partition of S_n every 4-dimensional substar
// contains at most one fault witness. Witnesses are the faulty vertices
// plus, for each faulty edge, its smaller endpoint; separating edge
// witnesses steers edge faults toward distinct blocks (or across block
// boundaries) exactly as the vertex argument of Lemma 2 requires.
//
// The greedy invariant mirrors the paper's proof: each chosen position
// splits at least one group of witnesses that still agree on all chosen
// positions, so after k positions there are at least min(|W|, k+1)
// groups. With |W| <= n-3 witnesses the n-4 positions therefore leave
// every group a singleton, and (as Lemma 3's proof uses) after the first
// n-5 positions at most one group of size two can remain.
//
// The function never fails for |witnesses| <= n-3; for larger sets it
// still returns a best-effort sequence (used by the best-effort embedder)
// and reports whether full separation was achieved.
func (s *Set) SeparatingPositions() (positions []int, separated bool) {
	return s.separate(0)
}

// SeparatingPositionsSplitting is SeparatingPositions with the extra
// requirement that the FIRST position distinguishes the two given
// vertices (they must hold different symbols there). The longest-path
// embedder needs this so that its source and target anchor opposite
// ends of the supervertex chain from the very first partition. Among
// the distinguishing positions, the one splitting the most fault
// groups is chosen, keeping the remaining greedy as effective as
// possible; full separation can occasionally become impossible when the
// forced position wastes the budget, which the flag reports.
func (s *Set) SeparatingPositionsSplitting(a, b perm.Code) (positions []int, separated bool, err error) {
	if s.n < 5 {
		return nil, true, nil
	}
	best, bestScore := 0, -1
	for i := 2; i <= s.n; i++ {
		if a.Symbol(i) == b.Symbol(i) {
			continue
		}
		score := s.bestSplitScoreAt(i)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best == 0 {
		return nil, false, fmt.Errorf("faults: vertices %s and %s agree at every position >= 2",
			a.StringN(s.n), b.StringN(s.n))
	}
	positions, separated = s.separate(best)
	return positions, separated, nil
}

// bestSplitScoreAt scores how many witness subgroups fixing position i
// would create beyond one, against the unpartitioned witness set.
func (s *Set) bestSplitScoreAt(i int) int {
	w := s.witnesses()
	if len(w) < 2 {
		return 0
	}
	var seen uint32
	k := 0
	for _, v := range w {
		bit := uint32(1) << (v.Symbol(i) - 1)
		if seen&bit == 0 {
			seen |= bit
			k++
		}
	}
	return k - 1
}

// separate runs the greedy with an optional forced first position
// (0 = unconstrained).
func (s *Set) separate(first int) (positions []int, separated bool) {
	n := s.n
	if n < 5 {
		return nil, true // S_4 is a single block; nothing to choose
	}
	witnesses := s.witnesses()
	need := n - 4

	chosen := make([]int, 0, need)
	used := make(map[int]bool, need)

	// groups[i] holds witnesses agreeing on every chosen position.
	groups := [][]perm.Code{witnesses}
	if len(witnesses) == 0 {
		groups = nil
	}
	if first != 0 {
		chosen = append(chosen, first)
		used[first] = true
		groups = splitGroups(groups, first)
	}

	for len(chosen) < need {
		pos := s.bestSplit(groups, used)
		if pos == 0 {
			// No multi-member group can be split by an unused position
			// (either all singletons already, or pathological overlap).
			// Fill with the smallest unused positions.
			for p := 2; p <= n && len(chosen) < need; p++ {
				if !used[p] {
					chosen = append(chosen, p)
					used[p] = true
					groups = splitGroups(groups, p)
				}
			}
			break
		}
		chosen = append(chosen, pos)
		used[pos] = true
		groups = splitGroups(groups, pos)
	}

	separated = true
	for _, g := range groups {
		if len(g) > 1 {
			separated = false
			break
		}
	}
	return chosen, separated
}

// witnesses returns the deduplicated separation witnesses: faulty
// vertices plus one endpoint per faulty edge.
func (s *Set) witnesses() []perm.Code {
	seen := make(map[perm.Code]bool, len(s.vlist)+len(s.elist))
	var w []perm.Code
	for _, v := range s.vlist {
		if !seen[v] {
			seen[v] = true
			w = append(w, v)
		}
	}
	for _, e := range s.elist {
		if !seen[e.U] {
			seen[e.U] = true
			w = append(w, e.U)
		}
	}
	return w
}

// bestSplit returns the unused position (2..n) that splits the largest
// number of currently-merged witness pairs, or 0 when no unused position
// splits any multi-member group.
func (s *Set) bestSplit(groups [][]perm.Code, used map[int]bool) int {
	best, bestScore := 0, 0
	for pos := 2; pos <= s.n; pos++ {
		if used[pos] {
			continue
		}
		score := 0
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			// Count the distinct symbols group members hold at pos; a
			// position splits the group iff it sees >= 2 symbols. The
			// score is the resulting number of subgroups minus one,
			// summed over groups.
			var seen uint32
			k := 0
			for _, v := range g {
				bit := uint32(1) << (v.Symbol(pos) - 1)
				if seen&bit == 0 {
					seen |= bit
					k++
				}
			}
			score += k - 1
		}
		if score > bestScore {
			best, bestScore = pos, score
		}
	}
	return best
}

// splitGroups refines every group by the symbol its members hold at pos.
func splitGroups(groups [][]perm.Code, pos int) [][]perm.Code {
	var out [][]perm.Code
	for _, g := range groups {
		if len(g) == 1 {
			out = append(out, g)
			continue
		}
		bySym := make(map[uint8][]perm.Code)
		var order []uint8
		for _, v := range g {
			sym := v.Symbol(pos)
			if _, ok := bySym[sym]; !ok {
				order = append(order, sym)
			}
			bySym[sym] = append(bySym[sym], v)
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		for _, sym := range order {
			out = append(out, bySym[sym])
		}
	}
	return out
}

// MaxTolerated returns the paper's fault budget n-3 for S_n.
func MaxTolerated(n int) int {
	if n < 3 {
		return 0
	}
	return n - 3
}
