package faults

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
	"repro/internal/substar"
)

func TestAddAndQuery(t *testing.T) {
	s := NewSet(4)
	v := perm.Pack(perm.MustParse("2134"))
	if s.HasVertex(v) {
		t.Fatal("empty set has a vertex")
	}
	if err := s.AddVertex(v); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVertex(v); err != nil {
		t.Fatal("re-add errored")
	}
	if s.NumVertices() != 1 || !s.HasVertex(v) {
		t.Fatal("vertex not recorded once")
	}
	if err := s.AddVertex(perm.None); err == nil {
		t.Fatal("invalid vertex accepted")
	}

	u := v.SwapFirst(2)
	if err := s.AddEdge(v, u); err != nil {
		t.Fatal(err)
	}
	if !s.HasEdge(u, v) || !s.HasEdge(v, u) {
		t.Fatal("edge not symmetric")
	}
	if s.NumEdges() != 1 {
		t.Fatal("edge count wrong")
	}
	if err := s.AddEdge(v, v); err == nil {
		t.Fatal("self edge accepted")
	}
	w := perm.Pack(perm.MustParse("4321"))
	if err := s.AddEdge(v, w); err == nil {
		t.Fatal("non-adjacent edge accepted")
	}
}

func TestAddVertexString(t *testing.T) {
	s := NewSet(5)
	if err := s.AddVertexString("21345"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVertexString("2134"); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if err := s.AddVertexString("zz"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSet(4)
	s.AddVertexString("2134")
	c := s.Clone()
	c.AddVertexString("3124")
	if s.NumVertices() != 1 || c.NumVertices() != 2 {
		t.Fatalf("clone not independent: %d, %d", s.NumVertices(), c.NumVertices())
	}
}

func TestCountIn(t *testing.T) {
	s := NewSet(5)
	s.AddVertexString("21345")
	s.AddVertexString("31245")
	s.AddVertexString("21354")
	p := substar.MustParse("***45")
	if got := s.CountIn(p); got != 2 {
		t.Fatalf("CountIn = %d, want 2", got)
	}
	got := s.FaultyIn(p, nil)
	if len(got) != 2 {
		t.Fatalf("FaultyIn returned %d", len(got))
	}
}

func TestIntraEdgesIn(t *testing.T) {
	s := NewSet(5)
	u := perm.Pack(perm.MustParse("21345"))
	s.AddEdge(u, u.SwapFirst(2)) // stays inside <***45>: positions 4, 5 untouched
	s.AddEdge(u, u.SwapFirst(4)) // crosses out of the pattern
	p := substar.MustParse("***45")
	if got := s.IntraEdgesIn(p, nil); len(got) != 1 {
		t.Fatalf("IntraEdgesIn = %d, want 1", len(got))
	}
}

func TestSeparatingPositionsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 5; n <= 9; n++ {
		for k := 0; k <= MaxTolerated(n); k++ {
			for trial := 0; trial < 20; trial++ {
				s := RandomVertices(n, k, rng)
				positions, separated := s.SeparatingPositions()
				if !separated {
					t.Fatalf("n=%d k=%d: separation failed", n, k)
				}
				if len(positions) != n-4 {
					t.Fatalf("n=%d: %d positions, want %d", n, len(positions), n-4)
				}
				seen := map[int]bool{}
				for _, p := range positions {
					if p < 2 || p > n || seen[p] {
						t.Fatalf("bad position list %v", positions)
					}
					seen[p] = true
				}
				// Lemma 2's conclusion: every block holds <= 1 fault.
				blocks := substar.Whole(n).PartitionSeq(positions)
				for _, b := range blocks {
					if c := s.CountIn(b); c > 1 {
						t.Fatalf("n=%d k=%d: block %v holds %d faults", n, k, b, c)
					}
				}
			}
		}
	}
}

// TestSeparatingPositionsLemma3Invariant checks the refinement of
// Lemma 2 that Lemma 3's proof relies on: after only the first n-5
// positions, at most one group of two faults remains and none larger.
func TestSeparatingPositionsLemma3Invariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 6; n <= 9; n++ {
		k := MaxTolerated(n)
		for trial := 0; trial < 50; trial++ {
			s := RandomVertices(n, k, rng)
			positions, _ := s.SeparatingPositions()
			blocks := substar.Whole(n).PartitionSeq(positions[:n-5])
			pairs := 0
			for _, b := range blocks {
				switch c := s.CountIn(b); {
				case c > 2:
					t.Fatalf("n=%d: order-5 supervertex with %d faults", n, c)
				case c == 2:
					pairs++
				}
			}
			if pairs > 1 {
				t.Fatalf("n=%d: %d order-5 supervertices with two faults", n, pairs)
			}
		}
	}
}

func TestSeparatingPositionsAdversarial(t *testing.T) {
	// All faults packed into one tiny cluster: the greedy must still
	// separate because cluster members differ pairwise somewhere >= 2.
	rng := rand.New(rand.NewSource(10))
	for n := 6; n <= 8; n++ {
		k := MaxTolerated(n)
		m := 3
		for perm.Factorial(m) < k {
			m++
		}
		s, _, err := ClusteredVertices(n, k, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		positions, separated := s.SeparatingPositions()
		if !separated {
			t.Fatalf("n=%d: clustered separation failed", n)
		}
		blocks := substar.Whole(n).PartitionSeq(positions)
		for _, b := range blocks {
			if s.CountIn(b) > 1 {
				t.Fatalf("n=%d: clustered block with %d faults", n, s.CountIn(b))
			}
		}
	}
}

func TestSeparatingWithEdgeWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 5; n <= 8; n++ {
		budget := MaxTolerated(n)
		for kv := 0; kv <= budget; kv++ {
			s := Mixed(n, kv, budget-kv, rng)
			positions, separated := s.SeparatingPositions()
			if !separated {
				t.Fatalf("n=%d kv=%d: separation failed", n, kv)
			}
			blocks := substar.Whole(n).PartitionSeq(positions)
			for _, b := range blocks {
				w := s.CountIn(b)
				for _, e := range s.Edges() {
					if b.Contains(e.U) && b.Contains(e.V) {
						w++
					}
				}
				if w > 1 {
					t.Fatalf("n=%d: block with witness weight %d", n, w)
				}
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 6

	s := RandomVertices(n, 3, rng)
	if s.NumVertices() != 3 {
		t.Fatalf("RandomVertices: %d", s.NumVertices())
	}

	for parity := 0; parity <= 1; parity++ {
		s = SamePartiteVertices(n, 3, parity, rng)
		for _, v := range s.Vertices() {
			if v.Parity(n) != parity {
				t.Fatalf("SamePartite: vertex with parity %d", v.Parity(n))
			}
		}
	}

	cs, pattern, err := ClusteredVertices(n, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pattern.R() != 3 {
		t.Fatalf("cluster pattern order %d", pattern.R())
	}
	for _, v := range cs.Vertices() {
		if !pattern.Contains(v) {
			t.Fatalf("clustered fault %s outside %v", v.StringN(n), pattern)
		}
	}
	if _, _, err := ClusteredVertices(n, 3, 2, rng); err == nil {
		t.Fatal("overfull cluster accepted")
	}
	if _, _, err := ClusteredVertices(n, 1, 1, rng); err == nil {
		t.Fatal("cluster order 1 accepted")
	}

	es := RandomEdges(n, 3, rng)
	if es.NumEdges() != 3 || es.NumVertices() != 0 {
		t.Fatalf("RandomEdges: %d edges, %d vertices", es.NumEdges(), es.NumVertices())
	}

	ms := Mixed(n, 2, 1, rng)
	if ms.NumVertices() != 2 || ms.NumEdges() != 1 {
		t.Fatalf("Mixed: %d, %d", ms.NumVertices(), ms.NumEdges())
	}
	for _, e := range ms.Edges() {
		if ms.HasVertex(e.U) || ms.HasVertex(e.V) {
			t.Fatal("Mixed produced an edge incident to a faulty vertex")
		}
	}

	g := func(a, b perm.Code) int { // toy metric for SpreadVertices
		if a == b {
			return 0
		}
		return 1
	}
	sp := SpreadVertices(n, 3, rng, g)
	if sp.NumVertices() != 3 {
		t.Fatalf("SpreadVertices: %d", sp.NumVertices())
	}
}

func TestFromStrings(t *testing.T) {
	s, err := FromStrings(5, "21345", "32145")
	if err != nil || s.NumVertices() != 2 {
		t.Fatalf("FromStrings: %v, %d", err, s.NumVertices())
	}
	if _, err := FromStrings(5, "2134"); err == nil {
		t.Fatal("wrong-dimension string accepted")
	}
	if _, err := FromStrings(5, "zzz"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNewEdgeNormalization(t *testing.T) {
	u := perm.Pack(perm.MustParse("2134"))
	v := u.SwapFirst(3)
	if NewEdge(u, v) != NewEdge(v, u) {
		t.Fatal("NewEdge not orientation-independent")
	}
}

func TestMaxTolerated(t *testing.T) {
	for _, c := range []struct{ n, want int }{{3, 0}, {4, 1}, {7, 4}, {2, 0}} {
		if got := MaxTolerated(c.n); got != c.want {
			t.Errorf("MaxTolerated(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestQuickSeparationAlwaysSucceedsWithinBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 5 // 5..8
		k := rng.Intn(MaxTolerated(n) + 1)
		s := RandomVertices(n, k, rng)
		positions, separated := s.SeparatingPositions()
		if !separated || len(positions) != n-4 {
			return false
		}
		for _, b := range substar.Whole(n).PartitionSeq(positions) {
			if s.CountIn(b) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
