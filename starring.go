// Package repro is the public facade of a full reproduction of
//
//	Sun-Yuan Hsieh, Gen-Huey Chen, Chin-Wen Ho:
//	"Embed Longest Rings onto Star Graphs with Vertex Faults",
//	International Conference on Parallel Processing (ICPP), 1998.
//
// The paper proves that an n-dimensional star graph S_n with
// |Fv| <= n-3 faulty vertices contains a fault-free ring of length
// n! - 2|Fv|, improving the previous guarantee of n! - 4|Fv| (Tseng,
// Chang, Sheu) and matching the bipartite upper bound, hence worst-case
// optimal. This package exposes the executable form of that theorem —
// a verified ring-embedding constructor — together with the star-graph
// substrate, the fault model and the two prior algorithms it is
// evaluated against.
//
// # Quick start
//
//	fs := repro.NewFaultSet(7)
//	fs.AddVertexString("2134567")
//	res, err := repro.EmbedRing(7, fs, repro.Options{})
//	// res.Ring is a healthy cycle of 7! - 2 = 5038 vertices.
//
// For online use — faults arriving while the ring is in service — build
// an engine once with NewEmbedder and keep the Plan it returns:
// Plan.Repair absorbs most new faults by re-routing one 24-vertex block
// and splicing it in place, orders of magnitude cheaper than a fresh
// embedding.
//
// For dimensions whose rings no longer fit comfortably in memory
// (n >= 10 is 3.6M vertices), set Options.Streaming: the embedding is
// kept in skeleton form at O(#blocks) memory, Plan.Cursor streams the
// ring vertex by vertex, VerifyRingStream checks it without
// materializing, and SaveRingStream/LoadRingStream persist it in a
// chunked format. See README.md "Scaling past memory".
//
// The heavy lifting lives in the internal packages (documented in
// DESIGN.md): internal/core implements Lemmas 2, 3, 7 and Theorem 1;
// internal/superring the supervertex rings; internal/pathsearch the
// exact S4 block searches standing in for Lemmas 4-6; internal/baseline
// the comparison algorithms; internal/check the independent verifier.
package repro

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/ringio"
	"repro/internal/star"
)

// Perm is a permutation of 1..n, the friendly form of a star-graph
// vertex. See ParseVertex and Vertex.String.
type Perm = perm.Perm

// Vertex is a star-graph vertex packed into a machine word.
type Vertex = perm.Code

// FaultSet collects faulty vertices and edges of one S_n.
type FaultSet = faults.Set

// Options tunes an embedding; the zero value runs the strict paper
// algorithm with automatic parallelism.
type Options = core.Config

// Embedding is a verified ring embedding (see core.Result).
type Embedding = core.Result

// Graph is the n-dimensional star graph substrate.
type Graph = star.Graph

// NewGraph returns the n-dimensional star graph S_n.
func NewGraph(n int) Graph { return star.New(n) }

// NewFaultSet returns an empty fault set for S_n.
func NewFaultSet(n int) *FaultSet { return faults.NewSet(n) }

// ParseVertex reads a vertex from the paper's permutation notation,
// e.g. "21345" in S_5 (digits 1-9, then letters a-g for n > 9).
func ParseVertex(s string) (Vertex, error) {
	p, err := perm.Parse(s)
	if err != nil {
		return 0, err
	}
	return perm.Pack(p), nil
}

// FormatVertex renders a vertex of S_n in permutation notation.
func FormatVertex(v Vertex, n int) string { return v.StringN(n) }

// EmbedRing constructs a healthy ring in S_n avoiding the given faults,
// of length at least n! - 2|Fv| whenever |Fv| + |Fe| <= n - 3 (the
// paper's Theorem 1 plus its concluding-remark extensions). The result
// has been re-verified against the fault set before it is returned.
func EmbedRing(n int, fs *FaultSet, opts Options) (*Embedding, error) {
	return core.Embed(n, fs, opts)
}

// Embedder is a reusable embedding engine for one S_n: it owns the
// graph and the search caches so repeated embeddings and online repairs
// share their setup cost (see core.Embedder).
type Embedder = core.Embedder

// Plan is a live embedding produced by an Embedder. Beyond the ring
// itself it retains the construction skeleton, so Plan.Repair can
// absorb a new vertex fault by re-routing a single 24-vertex block and
// splicing it in place instead of re-running the whole pipeline.
type Plan = core.Plan

// RepairOutcome classifies what Plan.Repair did: RepairNoop,
// RepairAvoided (off-ring fault), RepairSplice (fast path) or
// RepairRebuild (full re-embedding).
type RepairOutcome = core.RepairOutcome

// RepairReport describes one Plan.Repair call (see core.RepairReport).
type RepairReport = core.RepairReport

// Repair outcomes.
const (
	RepairNoop    = core.RepairNoop    // already-known fault; nothing to do
	RepairAvoided = core.RepairAvoided // fault off the ring; ring unchanged
	RepairSplice  = core.RepairSplice  // one block re-routed and spliced
	RepairRebuild = core.RepairRebuild // full re-embedding
)

// NewEmbedder returns a reusable embedding engine for S_n. Use it, via
// Embedder.Embed and Plan.Repair, when faults arrive incrementally;
// EmbedRing remains the one-shot entry point.
func NewEmbedder(n int, opts Options) (*Embedder, error) {
	return core.NewEmbedder(n, opts)
}

// RingCursor streams a Plan's ring one vertex at a time at O(one
// block) working memory (see core.RingCursor); obtain one with
// Plan.Cursor. After a Repair, live cursors fail with ErrStaleCursor
// at their next block boundary — take a fresh cursor to resume.
type RingCursor = core.RingCursor

// ErrStaleCursor reports that the plan was repaired or rebuilt while a
// cursor was iterating it.
var ErrStaleCursor = core.ErrStaleCursor

// PathEmbedding is a verified longest-path embedding (see
// core.PathResult).
type PathEmbedding = core.PathResult

// EmbedLongestPath constructs a longest healthy path between two
// healthy vertices s and t: at least n! - 2|Fv| vertices when s and t
// lie in different partite sets, n! - 2|Fv| - 1 otherwise (an extension
// beyond the paper; see DESIGN.md §4b).
func EmbedLongestPath(n int, fs *FaultSet, s, t Vertex, opts Options) (*PathEmbedding, error) {
	return core.EmbedPath(n, fs, s, t, opts)
}

// EmbedRingTseng runs the prior algorithm of Tseng, Chang and Sheu on
// the same substrate: guaranteed length n! - 4|Fv|.
func EmbedRingTseng(n int, fs *FaultSet, opts Options) (*baseline.TsengResult, error) {
	return baseline.Tseng(n, fs, opts)
}

// EmbedRingClustered runs the clustered-star algorithm of Latifi and
// Bagherzadeh: guaranteed length n! - m! where m is the minimal order of
// an embedded substar containing every fault.
func EmbedRingClustered(n int, fs *FaultSet, opts Options) (*baseline.LatifiResult, error) {
	return baseline.Latifi(n, fs, opts)
}

// VerifyRing independently checks that cycle is a healthy simple cycle
// of S_n of length at least minLen under the given faults.
func VerifyRing(g Graph, cycle []Vertex, fs *FaultSet, minLen int) error {
	return check.Ring(g, cycle, fs, minLen)
}

// VerifyRingStream is VerifyRing for rings too large to materialize:
// next yields consecutive cycle vertices (false at the end — the shape
// RingCursor.Next has), and the verdict is identical to VerifyRing's
// on any materializable input. Returns the number of vertices checked.
func VerifyRingStream(g Graph, next func() (Vertex, bool), fs *FaultSet, minLen int) (int, error) {
	return check.RingStream(g, next, fs, minLen)
}

// RingUpperBound returns the bipartite ceiling on any healthy cycle
// length for the given fault set; with all faults in one partite set it
// equals the paper's n! - 2|Fv|, which is why Theorem 1 is optimal.
func RingUpperBound(n int, fs *FaultSet) int {
	return check.BipartiteUpperBound(n, fs)
}

// SaveRing writes an embedded ring in the compact binary format of
// internal/ringio (one varint rank per vertex), suitable for handing to
// a scheduler and re-verifying on load.
func SaveRing(w io.Writer, n int, ring []Vertex) error {
	return ringio.WriteBinary(w, n, ring)
}

// LoadRing reads a ring written by SaveRing, re-validating every
// vertex. Use VerifyRing afterwards to re-check adjacency and
// healthiness against a fault set.
func LoadRing(r io.Reader) (n int, ring []Vertex, err error) {
	return ringio.ReadBinary(r)
}

// SaveRingStream writes a ring delivered by an iterator (typically
// Plan.Cursor().Next) in the chunked binary format, without ever
// holding the cycle: length must declare the exact vertex count up
// front (Plan.RingLen knows it from the skeleton).
func SaveRingStream(w io.Writer, n int, length int, next func() (Vertex, bool)) error {
	return ringio.WriteBinaryStream(w, n, length, next)
}

// RingReader decodes a saved ring one vertex at a time (see
// ringio.StreamReader): Next until false, then Err for the verdict.
type RingReader = ringio.StreamReader

// LoadRingStream opens a constant-memory decoder for a ring written by
// SaveRingStream or SaveRing. Feed RingReader.Next to VerifyRingStream
// to re-verify without materializing.
func LoadRingStream(r io.Reader) (*RingReader, error) {
	return ringio.ReadBinaryStream(r)
}

// Factorial returns n!, the number of vertices of S_n.
func Factorial(n int) int { return perm.Factorial(n) }

// MaxFaults returns the paper's fault budget n - 3 for S_n.
func MaxFaults(n int) int { return faults.MaxTolerated(n) }
