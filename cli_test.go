package repro_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
)

// End-to-end coverage of the command-line tools and examples: each is
// compiled and executed, and its output checked for the load-bearing
// claims. These tests need the go tool; they are skipped under -short.

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestCLIStarring(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starring", "-n", "6", "-fv", "213456,312456")
	if !strings.Contains(out, "ring length=716") || !strings.Contains(out, "verified=ok") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIStarringSaveAndPathMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "ring.srg")
	out := runGo(t, "run", "./cmd/starring", "-n", "5", "-random", "2", "-seed", "3", "-save", file)
	if !strings.Contains(out, "saved 116-vertex ring") {
		t.Fatalf("save output:\n%s", out)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("saved file missing: %v", err)
	}

	out = runGo(t, "run", "./cmd/starring", "-n", "6", "-random", "2", "-seed", "1",
		"-path-from", "123456", "-path-to", "654321")
	if !strings.Contains(out, "longest path") || !strings.Contains(out, "verified=ok") {
		t.Fatalf("path output:\n%s", out)
	}
}

func TestCLIStarringBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starring", "-n", "6", "-fv", "213456,312456", "-algo", "tseng")
	if !strings.Contains(out, "ring length=712") { // 720 - 4*2
		t.Fatalf("tseng output:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/starring", "-n", "6", "-fv", "213456,312456", "-algo", "latifi")
	if !strings.Contains(out, "verified=ok") {
		t.Fatalf("latifi output:\n%s", out)
	}
}

func TestCLIStarsweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starsweep", "-quick", "-exp", "T2")
	if !strings.Contains(out, "achieved=ceiling") || strings.Contains(out, "NO") {
		t.Fatalf("T2 output:\n%s", out)
	}
}

func TestCLIStarinfo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starinfo", "-n", "5", "-from", "12345", "-to", "52341")
	if !strings.Contains(out, "distance(12345, 52341) = 1") {
		t.Fatalf("starinfo output:\n%s", out)
	}
}

func TestCLIStarviz(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starviz", "-n", "4")
	if !strings.Contains(out, "graph S {") || !strings.Contains(out, "--") {
		t.Fatalf("starviz output:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/starviz", "-n", "6", "-random", "3", "-mode", "ring")
	if !strings.Contains(out, "digraph R4 {") || !strings.Contains(out, "indianred") {
		t.Fatalf("starviz ring output:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	checks := map[string]string{
		"quickstart":     "independent verification: ok",
		"faulttolerance": "best-effort",
		"tokenring":      "all-reduce complete",
		"comparison":     "latifi",
		"resilience":     "campaign summary",
		"scheduler":      "stale embedding rejected",
	}
	for example, want := range checks {
		out := runGo(t, "run", "./examples/"+example)
		if !strings.Contains(out, want) {
			t.Errorf("example %s: missing %q in output:\n%s", example, want, out)
		}
	}
}

func TestCLIStarverify(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "ring.srg")
	runGo(t, "run", "./cmd/starring", "-n", "5", "-fv", "21345", "-save", file)

	// Valid against the same fault set.
	out := runGo(t, "run", "./cmd/starverify", "-ring", file, "-fv", "21345", "-minlen", "118")
	if !strings.Contains(out, "starverify: ok") {
		t.Fatalf("verify output:\n%s", out)
	}

	// A new fault on the ring must be rejected (non-zero exit).
	cmd := exec.Command("go", "run", "./cmd/starverify", "-ring", file, "-fv", "21345,12345")
	cmd.Dir = repoRoot(t)
	combined, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("stale embedding accepted:\n%s", combined)
	}
	if !strings.Contains(string(combined), "REJECTED") {
		t.Fatalf("missing rejection message:\n%s", combined)
	}
}

// TestCLIStarringMetrics exercises the observability flags end to end:
// -metrics-json must leave a parseable dump with the phase, cache,
// backtrack and utilization metrics, and -debug-addr must announce a
// live expvar/pprof endpoint.
func TestCLIStarringMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	file := filepath.Join(t.TempDir(), "metrics.json")
	out := runGo(t, "run", "./cmd/starring", "-n", "6", "-faults", "3", "-seed", "2",
		"-debug-addr", "127.0.0.1:0", "-metrics-json", file)
	if !strings.Contains(out, "debug server listening on http://") {
		t.Errorf("missing debug server announcement:\n%s", out)
	}
	if !strings.Contains(out, "metrics written to "+file) {
		t.Errorf("missing metrics confirmation:\n%s", out)
	}

	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Gauges     map[string]int64          `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
		Events     []map[string]any          `json:"events"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, raw)
	}
	for _, h := range []string{"core.phase.total", "core.phase.separation", "core.phase.build_r4",
		"core.phase.junction", "core.phase.route", "core.phase.verify"} {
		if _, ok := snap.Histograms[h]; !ok {
			t.Errorf("missing phase histogram %s", h)
		}
	}
	for _, c := range []string{"core.s4.cache_hits", "core.s4.cache_misses",
		"core.junction.backtracks", "core.route.blocks"} {
		if _, ok := snap.Counters[c]; !ok {
			t.Errorf("missing counter %s", c)
		}
	}
	if _, ok := snap.Gauges["core.route.utilization_pct"]; !ok {
		t.Error("missing gauge core.route.utilization_pct")
	}
	if len(snap.Events) == 0 {
		t.Error("no span events recorded")
	}
}

// TestCLIStarsweepJSON checks the machine-readable sweep output.
func TestCLIStarsweepJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starsweep", "-quick", "-exp", "F2", "-json")
	var doc struct {
		Experiments []struct {
			ID      string   `json:"id"`
			Headers []string `json:"headers"`
			Rows    [][]struct {
				Text string   `json:"text"`
				Num  *float64 `json:"num"`
				NS   *int64   `json:"ns"`
			} `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "F2" {
		t.Fatalf("unexpected experiments: %+v", doc.Experiments)
	}
	f2 := doc.Experiments[0]
	if len(f2.Rows) == 0 || len(f2.Headers) == 0 {
		t.Fatalf("empty F2 table: %+v", f2)
	}
	// F2's columns are typed: n is numeric, the time column carries its
	// exact nanosecond value so consumers never re-parse "150µs" strings.
	row := f2.Rows[0]
	if row[0].Num == nil || *row[0].Num < 3 {
		t.Errorf("n column not typed: %+v", row[0])
	}
	if row[4].NS == nil {
		t.Errorf("time column carries no ns value: %+v", row[4])
	}
	if row[4].Text == "" {
		t.Errorf("time column lost its rendered text: %+v", row[4])
	}
}

// TestCLIStarringProfiles exercises -cpuprofile and -memprofile end to
// end: the CPU profile must exist, parse, and carry the phase=embed
// goroutine label on at least one sample (the tentpole claim — profiles
// attribute time to pipeline phases). n=9 keeps the embedder busy long
// enough for the 100Hz profiler to catch labeled samples.
func TestCLIStarringProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := runGo(t, "run", "./cmd/starring", "-n", "9", "-faults", "6", "-seed", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(out, "cpu profile written to "+cpu) ||
		!strings.Contains(out, "heap profile written to "+mem) {
		t.Fatalf("missing profile confirmations:\n%s", out)
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
	data, err := os.ReadFile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := prof.CPUProfileHasLabel(data, "phase", "embed")
	if err != nil {
		t.Fatalf("cpu profile does not parse: %v", err)
	}
	if !ok {
		t.Errorf("no phase=embed labeled samples in %s", cpu)
	}
}

func TestCLIStarinfoDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	out := runGo(t, "run", "./cmd/starinfo", "-n", "5", "-from", "12345", "-to", "54321", "-disjoint")
	if !strings.Contains(out, "4 node-disjoint paths (connectivity 4)") {
		t.Fatalf("disjoint output:\n%s", out)
	}
}

// TestCLIStarringExport exercises the export flags end to end: the
// Perfetto trace and NDJSON event log must validate through the same
// checkers starmon and CI use.
func TestCLIStarringExport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	events := filepath.Join(dir, "events.ndjson")
	out := runGo(t, "run", "./cmd/starring", "-n", "6", "-faults", "2", "-seed", "1",
		"-trace-out", trace, "-events-out", events)
	if !strings.Contains(out, "trace written to "+trace) {
		t.Errorf("missing trace confirmation:\n%s", out)
	}

	out = runGo(t, "run", "./cmd/starmon", "-check-trace", trace)
	if !strings.Contains(out, "trace ok:") {
		t.Errorf("trace did not validate:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/starmon", "-replay", events)
	if !strings.Contains(out, "core.embed") {
		t.Errorf("event log missing core.embed record:\n%s", out)
	}
}

// TestCLIStarsweepSeries checks -series-json and -trace-out on the
// sweep driver plus starmon's OpenMetrics checker against a saved
// scrape from the sweep registry.
func TestCLIStarsweepSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	series := filepath.Join(dir, "series.json")
	trace := filepath.Join(dir, "trace.json")
	runGo(t, "run", "./cmd/starsweep", "-quick", "-exp", "F2",
		"-series-json", series, "-series-period", "10ms", "-trace-out", trace)

	raw, err := os.ReadFile(series)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		PeriodNS int64 `json:"period_ns"`
		Series   []struct {
			Name    string           `json:"name"`
			Kind    string           `json:"kind"`
			Samples []map[string]any `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("series file is not valid JSON: %v\n%s", err, raw)
	}
	if dump.PeriodNS != 10_000_000 {
		t.Errorf("period_ns = %d, want 10ms", dump.PeriodNS)
	}
	found := false
	for _, s := range dump.Series {
		if strings.HasPrefix(s.Name, "harness.exp.") || strings.HasPrefix(s.Name, "core.") {
			found = true
		}
		if len(s.Samples) == 0 {
			t.Errorf("series %s has no samples", s.Name)
		}
	}
	if !found {
		t.Errorf("no sweep metrics in series dump:\n%s", raw)
	}

	out := runGo(t, "run", "./cmd/starmon", "-check-trace", trace)
	if !strings.Contains(out, "trace ok:") {
		t.Errorf("sweep trace did not validate:\n%s", out)
	}
}

// TestCLIStarringFlight is the causal-tracing acceptance run: a single
// starring invocation emitting events, trace and flight bundle, where
// every core.* event's trace id resolves to a span in the Perfetto
// trace, the metrics snapshot carries an OpenMetrics exemplar, and
// starmon validates the cross-check and renders the post-mortem.
func TestCLIStarringFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	events := filepath.Join(dir, "events.ndjson")
	flight := filepath.Join(dir, "flight")
	out := runGo(t, "run", "./cmd/starring", "-n", "6", "-faults", "2", "-seed", "1",
		"-trace-out", trace, "-events-out", events, "-flight-dump", flight)
	if !strings.Contains(out, "flight bundle written to "+flight) {
		t.Errorf("missing flight confirmation:\n%s", out)
	}

	// Every core.* event must carry a trace id that resolves to a span
	// in the trace file.
	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	_, traces, err := export.TraceSpanIDs(traceData)
	if err != nil {
		t.Fatal(err)
	}
	coreRecs := 0
	for _, r := range recs {
		if !strings.HasPrefix(r.Event, "core.") {
			continue
		}
		coreRecs++
		if r.Trace == 0 {
			t.Errorf("core event %q is untraced", r.Event)
			continue
		}
		if !traces[r.Trace.String()] {
			t.Errorf("core event %q trace %s has no spans in the trace file", r.Event, r.Trace)
		}
	}
	if coreRecs == 0 {
		t.Error("no core.* events recorded")
	}

	// The bundle's metrics snapshot must carry at least one exemplar.
	metrics, err := os.ReadFile(filepath.Join(flight, "flight-metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), `# {trace_id="`) {
		t.Errorf("no OpenMetrics exemplar in flight metrics:\n%s", metrics)
	}

	// starmon enforces the same cross-check and renders the bundle.
	out = runGo(t, "run", "./cmd/starmon", "-check-events", events, "-trace", trace)
	if !strings.Contains(out, "events ok:") {
		t.Errorf("check-events:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/starmon", "-postmortem", flight)
	if !strings.Contains(out, "flight bundle") || !strings.Contains(out, "trace ") {
		t.Errorf("postmortem render:\n%s", out)
	}
}
