// starlint runs the project's static analyzers (internal/analysis)
// over the module: permalias, globalrand, nakedpanic, uncheckederr,
// factsize and walltime, the disciplines that keep the n!-2|Fv|
// reproduction deterministic and aliasing-safe. It is zero-dependency: packages are
// parsed and type-checked with the standard library only.
//
// Usage:
//
//	starlint [-config file] [-analyzers a,b,...] [packages]
//
// With no arguments (or "./...") every package of the enclosing module
// is analyzed, skipping testdata. Arguments naming directories analyze
// exactly those directories, which is how fixture packages under
// testdata are linted deliberately.
//
// Diagnostics print one per line as "file:line: [analyzer] message".
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
//
// Findings are suppressed at a site with a reasoned comment on the
// offending line or the line above:
//
//	//starlint:ignore <analyzer> <reason>
//
// or for a whole symbol via the config file (default: .starlint at the
// module root, if present):
//
//	allow <analyzer> <symbol>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("starlint", flag.ContinueOnError)
	configPath := fs.String("config", "", "allowlist config file (default: <module root>/.starlint if present)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "starlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
		return 2
	}

	cfg, errCode := loadConfig(loader, *configPath)
	if errCode != 0 {
		return errCode
	}

	pkgs, errCode := load(loader, fs.Args())
	if errCode != 0 {
		return errCode
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "starlint: %s: %v\n", pkg.ImportPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags := analysis.Run(pkgs, analyzers, cfg)
	for _, d := range diags {
		d.Pos.Filename = relPath(d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "starlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// loadConfig resolves the allowlist: the explicit -config file, or the
// module root's .starlint when present.
func loadConfig(loader *analysis.Loader, path string) (*analysis.Config, int) {
	if path == "" {
		path = filepath.Join(loader.ModuleRoot(), ".starlint")
		if _, err := os.Stat(path); err != nil {
			return nil, 0
		}
	}
	cfg, err := analysis.LoadConfig(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
		return nil, 2
	}
	return cfg, 0
}

// load resolves the package arguments: no arguments or "./..." mean
// the whole module; anything else is a directory.
func load(loader *analysis.Loader, args []string) ([]*analysis.Package, int) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			module, err := loader.LoadModule()
			if err != nil {
				fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
				return nil, 2
			}
			pkgs = append(pkgs, module...)
			continue
		}
		pkg, err := loader.LoadDir(filepath.Clean(arg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "starlint: %s: %v\n", arg, err)
			return nil, 2
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, 0
}

// relPath shortens a diagnostic path relative to the working directory
// when that makes it strictly cleaner to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
