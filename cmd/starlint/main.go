// starlint runs the project's static analyzers (internal/analysis)
// over the module: the per-body disciplines (permalias, globalrand,
// nakedpanic, uncheckederr, factsize, walltime, metricname) plus the
// facts-engine analyzers that reason transitively through call chains
// (hotalloc, maporder, goroleak) — everything that keeps the n!-2|Fv|
// reproduction deterministic, aliasing-safe and allocation-free on its
// hot paths. It is zero-dependency: packages are parsed and
// type-checked with the standard library only.
//
// Usage:
//
//	starlint [-config file] [-analyzers a,b,...] [-json] [-strict-config] [packages]
//
// With no arguments (or "./...") every package of the enclosing module
// is analyzed, skipping testdata. Arguments naming directories analyze
// exactly those directories, which is how fixture packages under
// testdata are linted deliberately.
//
// Diagnostics print one per line as "file:line: [analyzer] message";
// -json instead emits a machine-readable array (file, line, column,
// analyzer, symbol, message) for CI to archive and diff. Exit status:
// 0 clean, 1 findings, 2 load or usage failure.
//
// Findings are suppressed at a site with a reasoned comment on the
// offending line or the line above:
//
//	//starlint:ignore <analyzer> <reason>
//
// or for a whole symbol via the config file (default: .starlint at the
// module root, if present):
//
//	allow <analyzer> <symbol>
//	hotpath <symbol>
//
// where a hotpath line opts the symbol into hotalloc enforcement, like
// a //starlint:hotpath doc directive. Suppressions and config entries
// that no longer suppress anything are reported as stale — warnings by
// default, findings (exit 1) under -strict-config.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("starlint", flag.ContinueOnError)
	configPath := fs.String("config", "", "allowlist config file (default: <module root>/.starlint if present)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	strictConfig := fs.Bool("strict-config", false, "treat stale suppressions and config entries as findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "starlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
		return 2
	}

	cfg, errCode := loadConfig(loader, *configPath)
	if errCode != 0 {
		return errCode
	}

	pkgs, errCode := load(loader, fs.Args())
	if errCode != 0 {
		return errCode
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "starlint: %s: %v\n", pkg.ImportPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags, stale := analysis.Analyze(pkgs, analyzers, cfg)
	for i := range diags {
		diags[i].Pos.Filename = relPath(diags[i].Pos.Filename)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, s := range stale {
		s.Pos.Filename = relPath(s.Pos.Filename)
		if *strictConfig {
			fmt.Fprintf(os.Stderr, "%s\n", s)
		} else {
			fmt.Fprintf(os.Stderr, "starlint: warning: %s\n", s)
		}
	}
	failed := len(diags) > 0 || (*strictConfig && len(stale) > 0)
	if failed {
		fmt.Fprintf(os.Stderr, "starlint: %d finding(s), %d stale suppression(s)\n", len(diags), len(stale))
		return 1
	}
	return 0
}

// loadConfig resolves the allowlist: the explicit -config file, or the
// module root's .starlint when present.
func loadConfig(loader *analysis.Loader, path string) (*analysis.Config, int) {
	if path == "" {
		path = filepath.Join(loader.ModuleRoot(), ".starlint")
		if _, err := os.Stat(path); err != nil {
			return nil, 0
		}
	}
	cfg, err := analysis.LoadConfig(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
		return nil, 2
	}
	return cfg, 0
}

// load resolves the package arguments: no arguments or "./..." mean
// the whole module; anything else is a directory.
func load(loader *analysis.Loader, args []string) ([]*analysis.Package, int) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			module, err := loader.LoadModule()
			if err != nil {
				fmt.Fprintf(os.Stderr, "starlint: %v\n", err)
				return nil, 2
			}
			pkgs = append(pkgs, module...)
			continue
		}
		pkg, err := loader.LoadDir(filepath.Clean(arg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "starlint: %s: %v\n", arg, err)
			return nil, 2
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, 0
}

// relPath shortens a diagnostic path relative to the working directory
// when that makes it strictly cleaner to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
