package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/export"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// ringSeries is a replayable NDJSON series: the ring length dips below
// 100 at t=3s and recovers by t=5s.
const ringSeries = `{"t_unix_ns":1000000000,"samples":{"sim.ring_length":120,"sim.failures":0}}
{"t_unix_ns":2000000000,"samples":{"sim.ring_length":118,"sim.failures":1}}
{"t_unix_ns":3000000000,"samples":{"sim.ring_length":80,"sim.failures":2}}
{"t_unix_ns":4000000000,"samples":{"sim.ring_length":80,"sim.failures":2}}
{"t_unix_ns":5000000000,"samples":{"sim.ring_length":116,"sim.failures":2}}
{"t_unix_ns":8000000000,"samples":{"sim.ring_length":116,"sim.failures":2}}
`

// TestWatchReplayExitCodes pins the -watch exit-code contract on a
// replayed series: a rule that fires mid-run exits 1 even though the
// curve recovers; a rule the series never violates exits 0.
func TestWatchReplayExitCodes(t *testing.T) {
	series := writeFile(t, "series.ndjson", ringSeries)

	firing := writeFile(t, "firing.json", `{"rules": [
		{"name": "ring-floor", "kind": "threshold",
		 "metric": "sim.ring_length", "window_s": 2, "min": 100}
	]}`)
	var out, errOut strings.Builder
	code := run([]string{"-watch", "-series", series, "-rules", firing}, &out, &errOut)
	if code != 1 {
		t.Fatalf("firing rule: exit %d, want 1; stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"FIRING   ring-floor", "resolved ring-floor", "watch: SLO violated"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}

	passing := writeFile(t, "passing.json", `{"rules": [
		{"name": "ring-floor", "kind": "threshold",
		 "metric": "sim.ring_length", "window_s": 2, "min": 50},
		{"name": "failure-rate", "kind": "rate",
		 "metric": "sim.failures", "window_s": 4, "max_per_s": 5}
	]}`)
	out.Reset()
	code = run([]string{"-watch", "-series", series, "-rules", passing}, &out, &errOut)
	if code != 0 {
		t.Fatalf("passing rules: exit %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "watch: ok") {
		t.Errorf("watch output missing verdict:\n%s", out.String())
	}
}

// TestWatchReplayLabeledFamily replays per-machine labeled series: a
// bare-family rule must see every machine="m<i>" series, so m1's dip
// fires it even though m0 stays healthy.
func TestWatchReplayLabeledFamily(t *testing.T) {
	series := writeFile(t, "fleet.ndjson", `{"t_unix_ns":1000000000,"samples":{"sim.ring_length{machine=\"m0\"}":120,"sim.ring_length{machine=\"m1\"}":118}}
{"t_unix_ns":2000000000,"samples":{"sim.ring_length{machine=\"m0\"}":120,"sim.ring_length{machine=\"m1\"}":80}}
`)
	rules := writeFile(t, "rules.json", `{"rules": [
		{"name": "fleet-floor", "kind": "threshold",
		 "metric": "sim.ring_length", "window_s": 5, "min": 100}
	]}`)
	var out, errOut strings.Builder
	if code := run([]string{"-watch", "-series", series, "-rules", rules}, &out, &errOut); code != 1 {
		t.Fatalf("fleet replay: exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "FIRING   fleet-floor") {
		t.Errorf("fleet watch output missing transition:\n%s", out.String())
	}
}

// TestWatchConfigErrors pins exit 2 for every unusable configuration.
func TestWatchConfigErrors(t *testing.T) {
	series := writeFile(t, "series.ndjson", ringSeries)
	rules := writeFile(t, "rules.json", `{"rules": [
		{"name": "r", "kind": "threshold", "metric": "m", "window_s": 1, "max": 1}
	]}`)
	cases := map[string][]string{
		"no rules":          {"-watch", "-series", series},
		"missing rule file": {"-watch", "-series", series, "-rules", filepath.Join(t.TempDir(), "nope.json")},
		"invalid policy":    {"-watch", "-series", series, "-rules", writeFile(t, "bad.json", `{"rules": []}`)},
		"no source":         {"-watch", "-rules", rules},
		"two sources":       {"-watch", "-rules", rules, "-series", series, "-attach", "localhost:1"},
		"missing series":    {"-watch", "-rules", rules, "-series", filepath.Join(t.TempDir(), "nope.ndjson")},
		"malformed series":  {"-watch", "-rules", rules, "-series", writeFile(t, "garbage.ndjson", "not json\n")},
		"empty series":      {"-watch", "-rules", rules, "-series", writeFile(t, "empty.ndjson", "")},
		"mode collision":    {"-watch", "-rules", rules, "-series", series, "-replay", "x"},
	}
	for label, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit %d, want 2; stderr: %s", label, code, errOut.String())
		}
	}
}

// TestWatchLive drives -watch against a live /metrics endpoint: a
// passing policy exits 0, a violated one exits 1, and an unreachable
// target exits 2 once the retry budget is spent.
func TestWatchLive(t *testing.T) {
	reg := liveRegistry() // t.run.depth gauge = 3
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	pass := writeFile(t, "pass.json", `{"rules": [
		{"name": "depth-cap", "kind": "threshold",
		 "metric": "t_run_depth", "window_s": 60, "max": 10}
	]}`)
	var out, errOut strings.Builder
	code := run([]string{"-watch", "-attach", srv.URL, "-rules", pass, "-frames", "2", "-interval", "1ms"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("live pass: exit %d, want 0; stderr: %s", code, errOut.String())
	}

	fire := writeFile(t, "fire.json", `{"rules": [
		{"name": "depth-cap", "kind": "threshold",
		 "metric": "t_run_depth", "window_s": 60, "max": 2}
	]}`)
	out.Reset()
	code = run([]string{"-watch", "-attach", srv.URL, "-rules", fire, "-frames", "2", "-interval", "1ms"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("live fire: exit %d, want 1; output: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FIRING   depth-cap") {
		t.Errorf("live watch output missing transition:\n%s", out.String())
	}

	srv.Close()
	errOut.Reset()
	code = run([]string{"-watch", "-attach", srv.URL, "-rules", pass, "-frames", "1", "-retries", "1", "-retry-backoff", "1ms"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("dead target: exit %d, want 2; stderr: %s", code, errOut.String())
	}
}

// TestWatchReplaySeriesDump feeds the engine a -series-json SeriesDump
// document (the sampler's native format) instead of NDJSON points.
func TestWatchReplaySeriesDump(t *testing.T) {
	dump := export.SeriesDump{Series: []export.Series{{
		Name: "sim.ring_length",
		Samples: []export.Sample{
			{T: 1e9, V: 120}, {T: 2e9, V: 80}, {T: 3e9, V: 120},
		},
	}}}
	var doc strings.Builder
	fmt.Fprintf(&doc, `{"series": [{"name": %q, "samples": [`, dump.Series[0].Name)
	for i, s := range dump.Series[0].Samples {
		if i > 0 {
			doc.WriteString(",")
		}
		fmt.Fprintf(&doc, `{"t_unix_ns": %d, "v": %d}`, s.T, s.V)
	}
	doc.WriteString(`]}]}`)
	series := writeFile(t, "dump.json", doc.String())

	rules := writeFile(t, "rules.json", `{"rules": [
		{"name": "ring-floor", "kind": "threshold",
		 "metric": "sim.ring_length", "window_s": 1, "min": 100}
	]}`)
	var out, errOut strings.Builder
	if code := run([]string{"-watch", "-series", series, "-rules", rules}, &out, &errOut); code != 1 {
		t.Fatalf("dump replay: exit %d, want 1; stderr: %s", code, errOut.String())
	}
}

// TestRunCheckMetricsWantLabel pins the -want-label extension: an
// exposition carrying machine-labeled samples passes, an unlabeled one
// fails the check.
func TestRunCheckMetricsWantLabel(t *testing.T) {
	reg := liveRegistry()
	reg.Child("machine", "m0").Counter("sim.embeds").Inc()
	var page strings.Builder
	if err := export.WriteOpenMetrics(&page, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	labeled := writeFile(t, "labeled.txt", page.String())

	var out, errOut strings.Builder
	if code := run([]string{"-check-metrics", labeled, "-want-label", "machine"}, &out, &errOut); code != 0 {
		t.Fatalf("labeled page: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "labeled machine") {
		t.Errorf("output does not report the label count: %q", out.String())
	}

	page.Reset()
	if err := export.WriteOpenMetrics(&page, liveRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	plain := writeFile(t, "plain.txt", page.String())
	errOut.Reset()
	if code := run([]string{"-check-metrics", plain, "-want-label", "machine"}, &out, &errOut); code != 1 {
		t.Fatalf("unlabeled page: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), `no sample carries label "machine"`) {
		t.Errorf("stderr %q", errOut.String())
	}
}
