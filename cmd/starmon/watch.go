package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/slo"
)

// Watch mode: starmon -watch -rules slo.json with either -attach (live
// /metrics polling) or -series (a replayed sampler dump). Rules are
// evaluated each frame; firing/resolved transitions render as they
// happen, and the exit code is the ops verdict CI gates on:
//
//	0  every rule ended the watch without ever firing
//	1  at least one rule fired at some evaluation (sticky)
//	2  target unreachable, or the rules/series input is unusable
//
// Live mode reads exposition sample names (sim_embeds_total, summary
// quantiles in seconds); replay mode reads sampler series names
// (sim.ring_length, histogram .p95_ns stats in nanoseconds). Rules are
// written against the names and units of the source being watched.

const (
	watchOK          = 0
	watchViolated    = 1
	watchUnreachable = 2
)

type watchOpts struct {
	target   string // live /metrics host:port or URL ("" = replay)
	series   string // replayed series file ("" = live)
	rules    string
	interval time.Duration
	frames   int
	retries  int
	backoff  time.Duration
}

// runWatch loads the policy, drives the engine from the chosen source,
// and maps the outcome onto the exit-code contract above.
func runWatch(stdout, stderr io.Writer, o watchOpts) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "starmon:", err)
		return watchUnreachable
	}
	if o.rules == "" {
		return fail(fmt.Errorf("-watch needs -rules <policy.json>"))
	}
	if (o.target == "") == (o.series == "") {
		return fail(fmt.Errorf("-watch needs exactly one of -attach (live) or -series (replay)"))
	}
	policy, err := slo.ParseFile(o.rules)
	if err != nil {
		return fail(err)
	}
	eng := slo.NewEngine(policy)
	w := &watcher{out: stdout, eng: eng, state: map[string]slo.State{}}

	if o.series != "" {
		if err := w.replay(o.series); err != nil {
			return fail(err)
		}
	} else if err := w.live(o); err != nil {
		return fail(err)
	}

	if eng.EverFired() {
		fmt.Fprintln(stdout, "watch: SLO violated")
		return watchViolated
	}
	fmt.Fprintln(stdout, "watch: ok")
	return watchOK
}

// watcher renders rule-state transitions as the engine advances.
type watcher struct {
	out   io.Writer
	eng   *slo.Engine
	state map[string]slo.State
}

// step feeds one instant's samples and renders any transitions.
func (w *watcher) step(t int64, samples map[string]float64) {
	w.eng.Observe(t, samples)
	for _, v := range w.eng.Evaluate(t) {
		prev, seen := w.state[v.Rule]
		if seen && prev == v.State {
			continue
		}
		w.state[v.Rule] = v.State
		switch v.State {
		case slo.StateFiring:
			fmt.Fprintf(w.out, "FIRING   %s: %s\n", v.Rule, v.Detail)
		case slo.StateOK:
			if seen && prev == slo.StateFiring {
				fmt.Fprintf(w.out, "resolved %s: %s\n", v.Rule, v.Detail)
			} else {
				fmt.Fprintf(w.out, "ok       %s: %s\n", v.Rule, v.Detail)
			}
		default:
			fmt.Fprintf(w.out, "no data  %s: %s\n", v.Rule, v.Detail)
		}
	}
}

// live polls the target's /metrics like -attach does, feeding each
// scrape into the engine. Scrape failures burn the retry budget and
// then surface as unreachable.
func (w *watcher) live(o watchOpts) error {
	target := o.target
	if !strings.HasPrefix(target, "http://") && !strings.HasPrefix(target, "https://") {
		target = "http://" + target
	}
	url := strings.TrimSuffix(target, "/") + "/metrics"
	interval := o.interval
	if interval <= 0 {
		interval = time.Second
	}
	for frame := 1; o.frames == 0 || frame <= o.frames; frame++ {
		data, err := fetchRetry(url, o.retries, o.backoff)
		if err != nil {
			return err
		}
		if _, err := export.ValidateOpenMetrics(data); err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
		samples, _, _ := parseExposition(data)
		w.step(obs.Wall.Now().UnixNano(), samples)
		if o.frames != 0 && frame == o.frames {
			break
		}
		time.Sleep(interval)
	}
	return nil
}

// replay drives the engine from a recorded series file: either an
// export.SeriesDump JSON document (starring -series-json, sim fleet
// dumps) or NDJSON point lines {"t_unix_ns":..., "samples":{...}}.
func (w *watcher) replay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	instants, err := parseSeriesPoints(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(instants) == 0 {
		return fmt.Errorf("%s: no samples to replay", path)
	}
	for _, in := range instants {
		w.step(in.t, in.samples)
	}
	return nil
}

// instant is every watched sample at one timestamp.
type instant struct {
	t       int64
	samples map[string]float64
}

// parseSeriesPoints normalizes both replay formats into a time-ordered
// instant list.
func parseSeriesPoints(data []byte) ([]instant, error) {
	byT := map[int64]map[string]float64{}

	var dump export.SeriesDump
	if err := json.Unmarshal(data, &dump); err == nil && len(dump.Series) > 0 {
		for _, s := range dump.Series {
			for _, p := range s.Samples {
				m := byT[p.T]
				if m == nil {
					m = map[string]float64{}
					byT[p.T] = m
				}
				m[s.Name] = float64(p.V)
			}
		}
	} else {
		// NDJSON point lines.
		type pointLine struct {
			T       int64              `json:"t_unix_ns"`
			Samples map[string]float64 `json:"samples"`
		}
		for i, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var pl pointLine
			if err := json.Unmarshal([]byte(line), &pl); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			if pl.Samples == nil {
				return nil, fmt.Errorf("line %d: no samples object", i+1)
			}
			m := byT[pl.T]
			if m == nil {
				m = map[string]float64{}
				byT[pl.T] = m
			}
			for k, v := range pl.Samples {
				m[k] = v
			}
		}
	}

	ts := make([]int64, 0, len(byT))
	for t := range byT {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]instant, len(ts))
	for i, t := range ts {
		out[i] = instant{t: t, samples: byT[t]}
	}
	return out, nil
}
