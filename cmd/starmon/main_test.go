package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
)

// liveRegistry builds a registry with one metric of each kind.
func liveRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.SetClock(obs.NewManual(time.Unix(50, 0)))
	reg.Counter("t.run.steps").Add(7)
	reg.Gauge("t.run.depth").Set(3)
	reg.Histogram("t.run.latency").Observe(1500)
	return reg
}

func TestRunCheckMetricsURL(t *testing.T) {
	srv := httptest.NewServer(export.MetricsHandler(liveRegistry()))
	defer srv.Close()

	var out, errOut strings.Builder
	if code := run([]string{"-check-metrics", srv.URL}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "openmetrics ok") {
		t.Errorf("output %q", out.String())
	}
}

func TestRunCheckMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	var page strings.Builder
	if err := export.WriteOpenMetrics(&page, liveRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(page.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-check-metrics", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}

	// A corrupt page must fail the check.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not a metrics page\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check-metrics", bad}, &out, &errOut); code != 1 {
		t.Errorf("corrupt page: exit %d, want 1", code)
	}
}

func TestRunCheckTrace(t *testing.T) {
	clock := obs.NewManual(time.Unix(10, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(8)
	reg.SetSink(rec)
	sp := reg.Span("t.phase.total")
	clock.Advance(time.Millisecond)
	sp.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := export.WriteTraceFile(path, rec.Events()); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-check-trace", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace ok: 1 complete events") {
		t.Errorf("output %q", out.String())
	}

	// A span-free trace is structurally valid JSON but useless; the
	// checker demands at least one complete event.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := export.WriteTraceFile(empty, nil); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check-trace", empty}, &out, &errOut); code != 1 {
		t.Errorf("empty trace: exit %d, want 1", code)
	}
}

func TestRunReplay(t *testing.T) {
	var log strings.Builder
	lg := obs.NewEventLog(&log, obs.LevelDebug, obs.NewManual(time.Unix(1, 0)))
	lg.Log(obs.LevelInfo, "sim.fault", obs.F("vertex", "21345"))
	lg.Log(obs.LevelInfo, "sim.repair", obs.F("outcome", "splice"))
	lg.Log(obs.LevelInfo, "sim.repair", obs.F("outcome", "rebuild"))
	lg.Log(obs.LevelDebug, "sim.token_move", obs.F("pos", 3))

	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(path, []byte(log.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-replay", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"4 records",
		"debug=1",
		"info=3",
		"sim.repair",
		"sim.repair:splice",
		"sim.repair:rebuild",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("replay output missing %q:\n%s", want, text)
		}
	}
}

func TestRunAttachFrames(t *testing.T) {
	reg := liveRegistry()
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{
		"-attach", strings.TrimPrefix(srv.URL, "http://"),
		"-frames", "2", "-interval", "1ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "frame 1") || !strings.Contains(text, "frame 2") {
		t.Fatalf("expected two frames:\n%s", text)
	}
	if !strings.Contains(text, "t_run_steps_total") {
		t.Errorf("counter missing from frames:\n%s", text)
	}
	if !strings.Contains(text, "/s") {
		t.Errorf("second frame should show a rate:\n%s", text)
	}
}

// serveScrape builds a canned starserve /metrics page: the labeled RED
// families with an exemplar on the p95 quantile, the admission gauges,
// and one algorithm counter that must stay in the main listing. The
// counters scale with step so consecutive frames see positive deltas.
func serveScrape(step int) string {
	return strings.Join([]string{
		"# TYPE serve_requests counter",
		`serve_requests_total{code="200",n="6",route="embed"} ` + itoa(40*step),
		`serve_requests_total{code="429",n="0",route="embed"} ` + itoa(10*step),
		"# TYPE serve_errors counter",
		`serve_errors_total{code="429",route="embed"} ` + itoa(10*step),
		"# TYPE serve_good counter",
		`serve_good_total{route="embed"} ` + itoa(40*step),
		"# TYPE serve_latency summary",
		`serve_latency{quantile="0.5",route="embed"} 0.002`,
		`serve_latency{quantile="0.95",route="embed"} 0.009 # {trace_id="00000000deadbeef"} 0.011`,
		`serve_latency_sum{route="embed"} 0.08`,
		`serve_latency_count{route="embed"} ` + itoa(50*step),
		"# TYPE serve_inflight gauge",
		"serve_inflight 1",
		"# TYPE serve_shed counter",
		"serve_shed_total " + itoa(10*step),
		"# TYPE core_embed_ok counter",
		"core_embed_ok_total " + itoa(40*step),
		"# EOF",
		"",
	}, "\n")
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestRunAttachServeSection drives -attach over two frames of a canned
// starserve scrape and checks the serve_* RED families render as their
// own section: every labeled series indented under the "serve:" header,
// counter lines carrying a per-second rate on the second frame, the
// latency quantile carrying its slowest-request exemplar trace — and
// the algorithm counter staying out in the main listing.
func TestRunAttachServeSection(t *testing.T) {
	var mu sync.Mutex
	step := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		step++
		page := serveScrape(step)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/openmetrics-text")
		w.Write([]byte(page))
	}))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{"-attach", srv.URL, "-frames", "2", "-interval", "1ms"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "serve:") {
		t.Fatalf("missing serve section:\n%s", text)
	}
	for _, want := range []string{
		`serve_requests_total{code="200",n="6",route="embed"}`,
		`serve_requests_total{code="429",n="0",route="embed"}`,
		`serve_errors_total{code="429",route="embed"}`,
		`serve_latency{quantile="0.95",route="embed"}`,
		"serve_inflight",
		"serve_shed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serve section missing %s:\n%s", want, text)
		}
	}
	// The p95 quantile line carries the exemplar's trace id, so a slow
	// request seen on the dashboard hands starmon -postmortem its key.
	if !strings.Contains(text, "trace=00000000deadbeef") {
		t.Errorf("latency exemplar not rendered:\n%s", text)
	}
	// Every serve_* line lives inside the section (4-space indent), and
	// counters there show a rate once a previous frame exists.
	frames := strings.Split(text, "frame 2")
	if len(frames) != 2 {
		t.Fatalf("expected two frames:\n%s", text)
	}
	var sawRate bool
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "serve_") && !strings.HasPrefix(line, "    ") {
			t.Errorf("serve family outside the serve section: %q", line)
		}
	}
	for _, line := range strings.Split(frames[1], "\n") {
		if strings.Contains(line, "serve_requests_total") && strings.Contains(line, "/s") {
			sawRate = true
		}
	}
	if !sawRate {
		t.Errorf("frame 2 serve counters missing per-second rates:\n%s", frames[1])
	}
	// The algorithm counter stays in the main listing at its own indent.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "core_embed_ok_total") && strings.HasPrefix(line, "    ") {
			t.Errorf("algorithm counter swallowed by a section: %q", line)
		}
	}
}

// TestRunAttachRuntimeSection drives -attach against a registry fed by
// a live prof.RuntimeSampler and checks the runtime gauges render as a
// dedicated frame section with human units instead of raw floats.
func TestRunAttachRuntimeSection(t *testing.T) {
	reg := liveRegistry()
	rt := prof.NewRuntimeSampler(reg)
	rt.Sample()
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{"-attach", srv.URL, "-frames", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "runtime:") {
		t.Fatalf("missing runtime section:\n%s", text)
	}
	for _, gauge := range []string{
		"runtime_mem_heap_bytes",
		"runtime_gc_cycles",
		"runtime_gc_pause_p95_ns",
		"runtime_sched_goroutines",
		"runtime_sched_latency_p95_ns",
	} {
		if !strings.Contains(text, gauge) {
			t.Errorf("runtime section missing %s:\n%s", gauge, text)
		}
	}
	// Heap bytes render with a binary-size unit, not a raw float.
	if !strings.Contains(text, "iB") && !strings.Contains(text, " B\n") {
		t.Errorf("heap gauge not humanized:\n%s", text)
	}
	// Runtime gauges must not also appear in the main metric listing
	// (every runtime_* line is indented under the section header).
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "runtime_") && !strings.HasPrefix(line, "    ") {
			t.Errorf("runtime gauge outside the runtime section: %q", line)
		}
	}
}

func TestFormatRuntimeValue(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"runtime_mem_heap_bytes", 5 << 20, "5.00 MiB"},
		{"runtime_mem_heap_bytes", 512, "512 B"},
		{"runtime_gc_pause_p95_ns", 1.5e6, "1.5ms"},
		{"runtime_sched_goroutines", 12, "12"},
	}
	for _, c := range cases {
		if got := formatRuntimeValue(c.name, c.v); got != c.want {
			t.Errorf("formatRuntimeValue(%s, %g) = %q, want %q", c.name, c.v, got, c.want)
		}
	}
}

func TestRunModeValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-replay", "x", "-check-trace", "y"}, &out, &errOut); code != 2 {
		t.Errorf("two modes: exit %d, want 2", code)
	}
}

// tracedRegistry builds a registry that ran one traced operation, so
// /metrics carries an exemplar and spans/events carry identity.
func tracedRegistry(t *testing.T) (*obs.Registry, *obs.Recorder, *strings.Builder, obs.TraceID) {
	t.Helper()
	clock := obs.NewManual(time.Unix(100, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(16)
	reg.SetSink(rec)
	var log strings.Builder
	reg.SetEventLog(obs.NewEventLog(&log, obs.LevelDebug, clock))

	op := reg.StartOp("t.op.run")
	sp := op.Span("t.phase.step")
	clock.Advance(2 * time.Millisecond)
	sp.End()
	op.Log(obs.LevelInfo, "t.milestone", obs.F("k", 1))
	clock.Advance(time.Millisecond)
	op.Done()
	return reg, rec, &log, op.Trace()
}

// -attach must retry a scrape that fails transiently instead of dying,
// and give up once the retry budget is spent.
func TestRunAttachRetriesTransientFailures(t *testing.T) {
	reg, _, _, _ := tracedRegistry(t)
	metrics := export.MetricsHandler(reg)
	var mu sync.Mutex
	failures := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "starting up", http.StatusServiceUnavailable)
			return
		}
		metrics.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{
		"-attach", srv.URL, "-frames", "1",
		"-retries", "3", "-retry-backoff", "1ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d despite retry budget, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "frame 1") {
		t.Errorf("no frame rendered:\n%s", out.String())
	}

	// With the budget exhausted before the server recovers, it must fail
	// and say how many attempts it made.
	mu.Lock()
	failures = 100
	mu.Unlock()
	out.Reset()
	errOut.Reset()
	code = run([]string{
		"-attach", srv.URL, "-frames", "1",
		"-retries", "2", "-retry-backoff", "1ms",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 once retries are spent", code)
	}
	if !strings.Contains(errOut.String(), "after 3 attempts") {
		t.Errorf("stderr does not count attempts: %s", errOut.String())
	}
}

// A frame over an exemplar-carrying exposition must render the trace id
// next to the summary quantile, and the parser must not let the
// exemplar clause corrupt the sample name or value.
func TestRunAttachRendersExemplars(t *testing.T) {
	reg, _, _, trace := tracedRegistry(t)
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	var out, errOut strings.Builder
	if code := run([]string{"-attach", srv.URL, "-frames", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace="+trace.String()) {
		t.Errorf("frame does not surface the exemplar trace:\n%s", out.String())
	}
}

func TestParseExpositionExemplar(t *testing.T) {
	page := []byte("# TYPE t_op_run summary\n" +
		"t_op_run{quantile=\"0.5\"} 0.001\n" +
		"t_op_run{quantile=\"0.95\"} 0.002 # {trace_id=\"00000000000000ff\"} 0.002\n" +
		"# EOF\n")
	samples, kinds, exemplars := parseExposition(page)
	if v := samples[`t_op_run{quantile="0.95"}`]; v != 0.002 {
		t.Errorf("exemplar line parsed to %v, want 0.002 (samples: %v)", v, samples)
	}
	if kinds["t_op_run"] != "summary" {
		t.Errorf("kinds = %v", kinds)
	}
	if exemplars[`t_op_run{quantile="0.95"}`] != "00000000000000ff" {
		t.Errorf("exemplars = %v", exemplars)
	}
	if _, ok := exemplars[`t_op_run{quantile="0.5"}`]; ok {
		t.Error("exemplar invented for a plain line")
	}
}

func TestRunCheckEvents(t *testing.T) {
	_, rec, log, _ := tracedRegistry(t)
	dir := t.TempDir()
	events := filepath.Join(dir, "events.ndjson")
	if err := os.WriteFile(events, []byte(log.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	if err := export.WriteTraceFile(tracePath, rec.Events()); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-check-events", events}, &out, &errOut); code != 0 {
		t.Fatalf("plain check: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 traced across 1 traces") {
		t.Errorf("output %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-check-events", events, "-trace", tracePath}, &out, &errOut); code != 0 {
		t.Fatalf("cross-check: exit %d, stderr: %s", code, errOut.String())
	}

	// A record whose trace id has no spans in the trace must fail.
	orphan := filepath.Join(dir, "orphan.ndjson")
	line := `{"t_unix_ns":1,"level":"info","event":"t.orphan","trace_id":"00000000000000aa","span_id":"00000000000000ab"}` + "\n"
	if err := os.WriteFile(orphan, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-check-events", orphan, "-trace", tracePath}, &out, &errOut); code != 1 {
		t.Fatalf("orphan trace: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "has no spans in") {
		t.Errorf("stderr %q", errOut.String())
	}

	// An all-untraced log makes the cross-check vacuous: also a failure.
	untraced := filepath.Join(dir, "untraced.ndjson")
	if err := os.WriteFile(untraced, []byte(`{"t_unix_ns":1,"level":"info","event":"t.plain"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check-events", untraced, "-trace", tracePath}, &out, &errOut); code != 1 {
		t.Errorf("untraced log cross-check: exit %d, want 1", code)
	}
}

func TestRunPostmortem(t *testing.T) {
	reg, _, _, _ := tracedRegistry(t)
	flight := obs.NewFlightRecorder(reg, 32)
	// The recorder was installed after the op ran, so replay one more
	// traced operation into the black box.
	op := reg.StartOp("t.op.again")
	op.Log(obs.LevelInfo, "t.milestone", obs.F("k", 2))
	op.Done()

	dir := filepath.Join(t.TempDir(), "flight")
	if err := export.WriteFlightBundle(dir, flight); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-postmortem", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"flight bundle",
		"trace " + op.Trace().String() + ":",
		"span  t.op.again",
		"t.milestone",
		"k=2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("postmortem missing %q:\n%s", want, text)
		}
	}

	// A missing bundle is an error, not an empty render.
	if code := run([]string{"-postmortem", filepath.Join(dir, "nope")}, &out, &errOut); code != 1 {
		t.Errorf("missing bundle: exit %d, want 1", code)
	}
}
