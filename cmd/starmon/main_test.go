package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
)

// liveRegistry builds a registry with one metric of each kind.
func liveRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.SetClock(obs.NewManual(time.Unix(50, 0)))
	reg.Counter("t.run.steps").Add(7)
	reg.Gauge("t.run.depth").Set(3)
	reg.Histogram("t.run.latency").Observe(1500)
	return reg
}

func TestRunCheckMetricsURL(t *testing.T) {
	srv := httptest.NewServer(export.MetricsHandler(liveRegistry()))
	defer srv.Close()

	var out, errOut strings.Builder
	if code := run([]string{"-check-metrics", srv.URL}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "openmetrics ok") {
		t.Errorf("output %q", out.String())
	}
}

func TestRunCheckMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	var page strings.Builder
	if err := export.WriteOpenMetrics(&page, liveRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(page.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-check-metrics", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}

	// A corrupt page must fail the check.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not a metrics page\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check-metrics", bad}, &out, &errOut); code != 1 {
		t.Errorf("corrupt page: exit %d, want 1", code)
	}
}

func TestRunCheckTrace(t *testing.T) {
	clock := obs.NewManual(time.Unix(10, 0))
	reg := obs.NewRegistry()
	reg.SetClock(clock)
	rec := obs.NewRecorder(8)
	reg.SetSink(rec)
	sp := reg.Span("t.phase.total")
	clock.Advance(time.Millisecond)
	sp.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := export.WriteTraceFile(path, rec.Events()); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-check-trace", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace ok: 1 complete events") {
		t.Errorf("output %q", out.String())
	}

	// A span-free trace is structurally valid JSON but useless; the
	// checker demands at least one complete event.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := export.WriteTraceFile(empty, nil); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check-trace", empty}, &out, &errOut); code != 1 {
		t.Errorf("empty trace: exit %d, want 1", code)
	}
}

func TestRunReplay(t *testing.T) {
	var log strings.Builder
	lg := obs.NewEventLog(&log, obs.LevelDebug, obs.NewManual(time.Unix(1, 0)))
	lg.Log(obs.LevelInfo, "sim.fault", obs.F("vertex", "21345"))
	lg.Log(obs.LevelInfo, "sim.repair", obs.F("outcome", "splice"))
	lg.Log(obs.LevelInfo, "sim.repair", obs.F("outcome", "rebuild"))
	lg.Log(obs.LevelDebug, "sim.token_move", obs.F("pos", 3))

	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(path, []byte(log.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-replay", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"4 records",
		"debug=1",
		"info=3",
		"sim.repair",
		"sim.repair:splice",
		"sim.repair:rebuild",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("replay output missing %q:\n%s", want, text)
		}
	}
}

func TestRunAttachFrames(t *testing.T) {
	reg := liveRegistry()
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{
		"-attach", strings.TrimPrefix(srv.URL, "http://"),
		"-frames", "2", "-interval", "1ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "frame 1") || !strings.Contains(text, "frame 2") {
		t.Fatalf("expected two frames:\n%s", text)
	}
	if !strings.Contains(text, "t_run_steps_total") {
		t.Errorf("counter missing from frames:\n%s", text)
	}
	if !strings.Contains(text, "/s") {
		t.Errorf("second frame should show a rate:\n%s", text)
	}
}

// TestRunAttachRuntimeSection drives -attach against a registry fed by
// a live prof.RuntimeSampler and checks the runtime gauges render as a
// dedicated frame section with human units instead of raw floats.
func TestRunAttachRuntimeSection(t *testing.T) {
	reg := liveRegistry()
	rt := prof.NewRuntimeSampler(reg)
	rt.Sample()
	srv := httptest.NewServer(export.MetricsHandler(reg))
	defer srv.Close()

	var out, errOut strings.Builder
	code := run([]string{"-attach", srv.URL, "-frames", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "runtime:") {
		t.Fatalf("missing runtime section:\n%s", text)
	}
	for _, gauge := range []string{
		"runtime_mem_heap_bytes",
		"runtime_gc_cycles",
		"runtime_gc_pause_p95_ns",
		"runtime_sched_goroutines",
		"runtime_sched_latency_p95_ns",
	} {
		if !strings.Contains(text, gauge) {
			t.Errorf("runtime section missing %s:\n%s", gauge, text)
		}
	}
	// Heap bytes render with a binary-size unit, not a raw float.
	if !strings.Contains(text, "iB") && !strings.Contains(text, " B\n") {
		t.Errorf("heap gauge not humanized:\n%s", text)
	}
	// Runtime gauges must not also appear in the main metric listing
	// (every runtime_* line is indented under the section header).
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "runtime_") && !strings.HasPrefix(line, "    ") {
			t.Errorf("runtime gauge outside the runtime section: %q", line)
		}
	}
}

func TestFormatRuntimeValue(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"runtime_mem_heap_bytes", 5 << 20, "5.00 MiB"},
		{"runtime_mem_heap_bytes", 512, "512 B"},
		{"runtime_gc_pause_p95_ns", 1.5e6, "1.5ms"},
		{"runtime_sched_goroutines", 12, "12"},
	}
	for _, c := range cases {
		if got := formatRuntimeValue(c.name, c.v); got != c.want {
			t.Errorf("formatRuntimeValue(%s, %g) = %q, want %q", c.name, c.v, got, c.want)
		}
	}
}

func TestRunModeValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-replay", "x", "-check-trace", "y"}, &out, &errOut); code != 2 {
		t.Errorf("two modes: exit %d, want 2", code)
	}
}
