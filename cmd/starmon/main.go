// Command starmon is a terminal monitor for the telemetry the other
// commands export. It attaches to a running process started with
// -debug-addr and renders live per-second counter rates, gauge values
// and histogram quantiles from its /metrics endpoint; it replays an
// NDJSON event log (-events-out) into a summary of faults, repair
// outcomes and level counts; and it validates exported artifacts so
// CI can gate on them.
//
// Usage:
//
//	starmon -attach localhost:6060                 # live monitor
//	starmon -attach localhost:6060 -frames 5       # five frames, then exit
//	starmon -replay events.ndjson                  # summarize an event log
//	starmon -check-metrics http://host:6060/metrics
//	starmon -check-metrics metrics.txt             # or a saved scrape
//	starmon -check-trace trace.json                # Perfetto trace_event
//	starmon -check-events events.ndjson -trace trace.json
//	starmon -postmortem flight/                    # render a flight bundle
//	starmon -watch -attach localhost:6060 -rules slo.json -frames 10
//	starmon -watch -series series.json -rules slo.json
//
// -attach retries transient scrape failures with bounded exponential
// backoff (-retries, -retry-backoff) instead of dying on the first
// hiccup, so a monitor outlives its target's restarts. -check-events
// validates an NDJSON event log and, with -trace, resolves every traced
// record's trace id against the trace's spans — the causal-correlation
// gate CI runs on flight dumps. -postmortem loads a flight-recorder
// bundle (the directory written by -flight-dump, or a tar saved from
// /debug/flight) and reconstructs the per-trace timeline: spans and
// events of each operation, interleaved in time order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so tests can drive every mode.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("starmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attach       = fs.String("attach", "", "monitor a live process: host:port or base URL of its -debug-addr server")
		interval     = fs.Duration("interval", time.Second, "polling period for -attach")
		frames       = fs.Int("frames", 0, "stop -attach after this many frames (0 = run until interrupted)")
		retries      = fs.Int("retries", 5, "scrape retries per -attach frame before giving up")
		retryBackoff = fs.Duration("retry-backoff", 500*time.Millisecond, "initial backoff between -attach scrape retries (doubles per retry)")
		replay       = fs.String("replay", "", "summarize an NDJSON event log file")
		checkMetrics = fs.String("check-metrics", "", "validate an OpenMetrics exposition (URL or file) and exit")
		checkTrace   = fs.String("check-trace", "", "validate a Chrome trace_event JSON file and exit")
		checkEvents  = fs.String("check-events", "", "validate an NDJSON event log file and exit (see -trace)")
		traceFile    = fs.String("trace", "", "with -check-events: resolve every traced record against this trace_event JSON file")
		postmortem   = fs.String("postmortem", "", "render a flight-recorder bundle (directory or tar) as per-trace timelines")
		watch        = fs.Bool("watch", false, "evaluate -rules against -attach (live) or -series (replay); exit 0 ok, 1 SLO violated, 2 unreachable")
		rules        = fs.String("rules", "", "with -watch: SLO policy file (JSON; see internal/obs/slo)")
		series       = fs.String("series", "", "with -watch: replay a recorded series file instead of scraping")
		wantLabel    = fs.String("want-label", "", "with -check-metrics: additionally require at least one sample carrying this label key")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *watch {
		for _, m := range []string{*replay, *checkMetrics, *checkTrace, *checkEvents, *postmortem} {
			if m != "" {
				fmt.Fprintln(stderr, "starmon: -watch does not combine with other modes")
				return 2
			}
		}
		return runWatch(stdout, stderr, watchOpts{
			target:   *attach,
			series:   *series,
			rules:    *rules,
			interval: *interval,
			frames:   *frames,
			retries:  *retries,
			backoff:  *retryBackoff,
		})
	}

	modes := 0
	for _, m := range []string{*attach, *replay, *checkMetrics, *checkTrace, *checkEvents, *postmortem} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "starmon: need exactly one of -attach, -replay, -check-metrics, -check-trace, -check-events, -postmortem, -watch")
		fs.Usage()
		return 2
	}

	var err error
	switch {
	case *checkMetrics != "":
		err = runCheckMetrics(stdout, *checkMetrics, *wantLabel)
	case *checkTrace != "":
		err = runCheckTrace(stdout, *checkTrace)
	case *checkEvents != "":
		err = runCheckEvents(stdout, *checkEvents, *traceFile)
	case *postmortem != "":
		err = runPostmortem(stdout, *postmortem)
	case *replay != "":
		err = runReplay(stdout, *replay)
	default:
		err = runAttach(stdout, *attach, *interval, *frames, *retries, *retryBackoff)
	}
	if err != nil {
		fmt.Fprintln(stderr, "starmon:", err)
		return 1
	}
	return 0
}

// fetch reads an artifact from a URL or a local file.
func fetch(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(src)
}

func runCheckMetrics(w io.Writer, src, wantLabel string) error {
	data, err := fetch(src)
	if err != nil {
		return err
	}
	families, exemplars, err := export.ValidateOpenMetricsDetail(data)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	labeled := 0
	if wantLabel != "" {
		samples, _, _ := parseExposition(data)
		needle := wantLabel + `="`
		for name := range samples {
			if i := strings.IndexByte(name, '{'); i >= 0 && strings.Contains(name[i:], needle) {
				labeled++
			}
		}
		if labeled == 0 {
			return fmt.Errorf("%s: no sample carries label %q", src, wantLabel)
		}
	}
	fmt.Fprintf(w, "openmetrics ok: %d metric families, %d exemplars", families, exemplars)
	if wantLabel != "" {
		fmt.Fprintf(w, ", %d samples labeled %s", labeled, wantLabel)
	}
	fmt.Fprintln(w)
	return nil
}

// runCheckEvents validates an NDJSON event log: every line must parse
// as an obs.Record. With a companion trace file it additionally
// enforces causal correlation — every record stamped with a trace id
// must resolve to at least one span of that trace in the trace file,
// and at least one traced record must exist (an all-untraced log would
// make the cross-check vacuously true).
func runCheckEvents(w io.Writer, path, tracePath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadLog(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	traced := 0
	traces := map[obs.TraceID]bool{}
	for _, r := range recs {
		if r.Trace != 0 {
			traced++
			traces[r.Trace] = true
		}
	}
	if tracePath != "" {
		data, err := fetch(tracePath)
		if err != nil {
			return err
		}
		_, known, err := export.TraceSpanIDs(data)
		if err != nil {
			return fmt.Errorf("%s: %w", tracePath, err)
		}
		if traced == 0 {
			return fmt.Errorf("%s: no traced records to resolve against %s", path, tracePath)
		}
		for _, r := range recs {
			if r.Trace != 0 && !known[r.Trace.String()] {
				return fmt.Errorf("%s: record %q trace_id %s has no spans in %s",
					path, r.Event, r.Trace, tracePath)
			}
		}
	}
	fmt.Fprintf(w, "events ok: %d records, %d traced across %d traces\n",
		len(recs), traced, len(traces))
	return nil
}

func runCheckTrace(w io.Writer, src string) error {
	data, err := fetch(src)
	if err != nil {
		return err
	}
	complete, err := export.ValidateTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	if complete == 0 {
		return fmt.Errorf("%s: trace has no complete events", src)
	}
	fmt.Fprintf(w, "trace ok: %d complete events\n", complete)
	return nil
}

// runReplay folds an NDJSON event log into a one-screen summary:
// record and level counts, per-event tallies, and the repair-outcome
// breakdown the sim and core event streams carry.
func runReplay(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadLog(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(w, "0 records")
		return nil
	}

	levels := map[string]int{}
	events := map[string]int{}
	outcomes := map[string]int{}
	for _, r := range recs {
		levels[r.Level]++
		events[r.Event]++
		if out, ok := r.Fields["outcome"].(string); ok {
			outcomes[r.Event+":"+out]++
		}
	}
	span := time.Duration(recs[len(recs)-1].T - recs[0].T)
	fmt.Fprintf(w, "%d records spanning %v\n", len(recs), span)
	fmt.Fprintf(w, "levels: %s\n", joinCounts(levels))
	fmt.Fprintln(w, "events:")
	for _, name := range sortedKeys(events) {
		fmt.Fprintf(w, "  %-24s %d\n", name, events[name])
	}
	if len(outcomes) > 0 {
		fmt.Fprintln(w, "repair outcomes:")
		for _, name := range sortedKeys(outcomes) {
			fmt.Fprintf(w, "  %-24s %d\n", name, outcomes[name])
		}
	}
	return nil
}

// runPostmortem loads a flight-recorder bundle and reconstructs what
// the process was doing when it dumped: a validation summary of the
// three artifacts, then one timeline per trace — the trace's spans
// (name and duration, from the Perfetto artifact) followed by its
// event-log records in time order, offset from the first retained
// record. Untraced records are summarized at the end.
func runPostmortem(w io.Writer, path string) error {
	b, err := export.ReadFlightBundle(path)
	if err != nil {
		return err
	}
	complete, err := export.ValidateTrace(b.Trace)
	if err != nil {
		return fmt.Errorf("%s: trace: %w", path, err)
	}
	families, exemplars, err := export.ValidateOpenMetricsDetail(b.Metrics)
	if err != nil {
		return fmt.Errorf("%s: metrics: %w", path, err)
	}
	fmt.Fprintf(w, "flight bundle %s: %d events, %d spans, %d metric families, %d exemplars\n",
		path, len(b.Events), complete, families, exemplars)

	// Spans per trace, in the exporter's time order.
	var tr export.Trace
	if err := json.Unmarshal(b.Trace, &tr); err != nil {
		return fmt.Errorf("%s: trace: %w", path, err)
	}
	type spanRow struct {
		name string
		dur  time.Duration
	}
	spansByTrace := map[string][]spanRow{}
	var order []string
	seen := map[string]bool{}
	note := func(id string) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		id := ""
		if e.Args != nil {
			id = e.Args["trace_id"]
		}
		if id == "" {
			continue
		}
		note(id)
		spansByTrace[id] = append(spansByTrace[id],
			spanRow{e.Name, time.Duration(e.Dur * float64(time.Microsecond))})
	}

	// Records per trace, plus the untraced remainder.
	recsByTrace := map[string][]obs.Record{}
	var untraced []obs.Record
	var t0 int64
	for i, r := range b.Events {
		if i == 0 || r.T < t0 {
			t0 = r.T
		}
	}
	for _, r := range b.Events {
		if r.Trace == 0 {
			untraced = append(untraced, r)
			continue
		}
		id := r.Trace.String()
		note(id)
		recsByTrace[id] = append(recsByTrace[id], r)
	}

	for _, id := range order {
		fmt.Fprintf(w, "trace %s:\n", id)
		for _, s := range spansByTrace[id] {
			fmt.Fprintf(w, "  span  %-28s %v\n", s.name, s.dur)
		}
		for _, r := range recsByTrace[id] {
			fmt.Fprintf(w, "  event %s %-7s %s%s\n",
				formatOffset(r.T-t0), r.Level, r.Event, formatFields(r.Fields))
		}
	}
	if len(untraced) > 0 {
		fmt.Fprintf(w, "untraced: %d records\n", len(untraced))
	}
	return nil
}

// formatOffset renders a record's time as an offset from the first
// retained record, fixed-width so timeline columns line up.
func formatOffset(ns int64) string {
	return fmt.Sprintf("%-10s", "+"+time.Duration(ns).Round(time.Microsecond).String())
}

// formatFields renders a record's fields sorted by key, so output is
// deterministic across runs.
func formatFields(fields map[string]interface{}) string {
	if len(fields) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, k := range sortedKeys(fields) {
		fmt.Fprintf(&sb, " %s=%v", k, fields[k])
	}
	return sb.String()
}

// runAttach polls the target's /metrics endpoint and renders one frame
// per interval: counter rates against the previous frame, gauge values,
// and summary quantiles. Scrape failures are retried with bounded
// exponential backoff — a monitor should outlive a restarting target —
// and only abort the frame loop once the retry budget is spent.
func runAttach(w io.Writer, target string, interval time.Duration, frames, retries int, backoff time.Duration) error {
	if !strings.HasPrefix(target, "http://") && !strings.HasPrefix(target, "https://") {
		target = "http://" + target
	}
	url := strings.TrimSuffix(target, "/") + "/metrics"
	if interval <= 0 {
		interval = time.Second
	}

	var prev map[string]float64
	for frame := 1; frames == 0 || frame <= frames; frame++ {
		data, err := fetchRetry(url, retries, backoff)
		if err != nil {
			return err
		}
		if _, err := export.ValidateOpenMetrics(data); err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
		cur, kinds, exemplars := parseExposition(data)
		renderFrame(w, frame, interval, cur, prev, kinds, exemplars)
		prev = cur
		if frames != 0 && frame == frames {
			break
		}
		time.Sleep(interval)
	}
	return nil
}

// fetchRetry fetches with up to retries retries after the first
// attempt, doubling the backoff between attempts (capped at 8s).
// Transient failures — connection refused during a restart, a non-200
// from a proxy — are the expected case; persistent ones surface with
// the attempt count attached.
func fetchRetry(src string, retries int, backoff time.Duration) ([]byte, error) {
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		var data []byte
		data, err = fetch(src)
		if err == nil {
			return data, nil
		}
		if attempt >= retries {
			return nil, fmt.Errorf("after %d attempts: %w", attempt+1, err)
		}
		time.Sleep(backoff)
		if backoff < 8*time.Second {
			backoff *= 2
		}
	}
}

// parseExposition reads an OpenMetrics text page into sample values
// keyed by full sample name (labels included), each family's TYPE, and
// any exemplar trace ids keyed by the sample they annotate.
func parseExposition(data []byte) (samples map[string]float64, kinds, exemplars map[string]string) {
	samples = map[string]float64{}
	kinds = map[string]string{}
	exemplars = map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				kinds[fields[2]] = fields[3]
			}
			continue
		}
		// An exemplar clause (` # {trace_id="..."} value`) must come off
		// before the `} ` name/value split below, or its closing brace
		// would masquerade as the end of the label set.
		var exemplar string
		if ex := strings.Index(line, " # {"); ex >= 0 {
			exemplar = line[ex+4:]
			line = line[:ex]
			if end := strings.IndexByte(exemplar, '}'); end >= 0 {
				exemplar = exemplar[:end]
			}
		}
		// `name{labels} value [timestamp]` or `name value [timestamp]`.
		cut := strings.LastIndex(line, "} ")
		var name, rest string
		if cut >= 0 {
			name, rest = line[:cut+1], strings.TrimSpace(line[cut+2:])
		} else {
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				continue
			}
			name, rest = line[:sp], strings.TrimSpace(line[sp+1:])
		}
		val := rest
		if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			val = rest[:sp]
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			samples[name] = v
			if tr, ok := strings.CutPrefix(exemplar, `trace_id="`); ok {
				exemplars[name] = strings.TrimSuffix(tr, `"`)
			}
		}
	}
	return samples, kinds, exemplars
}

// renderFrame prints one monitor frame. Counter families get a
// per-second rate once a previous frame exists; everything else shows
// its current value, summary quantiles with the trace id of their
// slowest-observation exemplar when the exposition carries one. Two
// families render as their own sections: the prof.RuntimeSampler
// gauges (runtime_*) with human units, and the starserve RED families
// (serve_*) — per-route request/error rates and latency quantiles —
// so service health reads at a glance, separate from the algorithm
// metrics.
func renderFrame(w io.Writer, frame int, interval time.Duration, cur, prev map[string]float64, kinds, exemplars map[string]string) {
	fmt.Fprintf(w, "frame %d (%d samples)\n", frame, len(cur))
	var serveNames, runtimeNames []string
	for _, name := range sortedKeys(cur) {
		switch {
		case strings.HasPrefix(name, "runtime_"):
			runtimeNames = append(runtimeNames, name)
		case strings.HasPrefix(name, "serve_"):
			serveNames = append(serveNames, name)
		default:
			renderSample(w, "  ", 44, name, interval, cur, prev, kinds, exemplars)
		}
	}
	if len(serveNames) > 0 {
		fmt.Fprintln(w, "  serve:")
		for _, name := range serveNames {
			renderSample(w, "    ", 54, name, interval, cur, prev, kinds, exemplars)
		}
	}
	if len(runtimeNames) > 0 {
		fmt.Fprintln(w, "  runtime:")
		for _, name := range runtimeNames {
			fmt.Fprintf(w, "    %-42s %12s\n", name, formatRuntimeValue(name, cur[name]))
		}
	}
}

// renderSample prints one sample line: counters with their value and
// (after the first frame) a per-second rate, summary quantiles with
// their exemplar trace id, everything else as a plain value. width
// sizes the name column (labeled serve_* names run long).
func renderSample(w io.Writer, indent string, width int, name string, interval time.Duration, cur, prev map[string]float64, kinds, exemplars map[string]string) {
	family := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family = name[:i]
	}
	kind := kinds[strings.TrimSuffix(family, "_total")]
	if kind == "" {
		kind = kinds[family]
	}
	switch kind {
	case "counter":
		line := fmt.Sprintf("%s%-*s %12.0f", indent, width, name, cur[name])
		if prev != nil {
			rate := (cur[name] - prev[name]) / interval.Seconds()
			line += fmt.Sprintf("  %+.1f/s", rate)
		}
		fmt.Fprintln(w, line)
	case "summary":
		line := fmt.Sprintf("%s%-*s %12g", indent, width, name, cur[name])
		if tr := exemplars[name]; tr != "" {
			line += "  trace=" + tr
		}
		fmt.Fprintln(w, line)
	default:
		fmt.Fprintf(w, "%s%-*s %12.0f\n", indent, width, name, cur[name])
	}
}

// formatRuntimeValue picks human units from the gauge name: byte
// gauges render as KiB/MiB/GiB, *_ns gauges as durations, and counts
// stay integers.
func formatRuntimeValue(name string, v float64) string {
	switch {
	case strings.Contains(name, "bytes"):
		return formatBytes(v)
	case strings.HasSuffix(name, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func joinCounts(m map[string]int) string {
	var parts []string
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
