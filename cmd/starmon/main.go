// Command starmon is a terminal monitor for the telemetry the other
// commands export. It attaches to a running process started with
// -debug-addr and renders live per-second counter rates, gauge values
// and histogram quantiles from its /metrics endpoint; it replays an
// NDJSON event log (-events-out) into a summary of faults, repair
// outcomes and level counts; and it validates exported artifacts so
// CI can gate on them.
//
// Usage:
//
//	starmon -attach localhost:6060                 # live monitor
//	starmon -attach localhost:6060 -frames 5       # five frames, then exit
//	starmon -replay events.ndjson                  # summarize an event log
//	starmon -check-metrics http://host:6060/metrics
//	starmon -check-metrics metrics.txt             # or a saved scrape
//	starmon -check-trace trace.json                # Perfetto trace_event
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so tests can drive every mode.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("starmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attach       = fs.String("attach", "", "monitor a live process: host:port or base URL of its -debug-addr server")
		interval     = fs.Duration("interval", time.Second, "polling period for -attach")
		frames       = fs.Int("frames", 0, "stop -attach after this many frames (0 = run until interrupted)")
		replay       = fs.String("replay", "", "summarize an NDJSON event log file")
		checkMetrics = fs.String("check-metrics", "", "validate an OpenMetrics exposition (URL or file) and exit")
		checkTrace   = fs.String("check-trace", "", "validate a Chrome trace_event JSON file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, m := range []string{*attach, *replay, *checkMetrics, *checkTrace} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "starmon: need exactly one of -attach, -replay, -check-metrics, -check-trace")
		fs.Usage()
		return 2
	}

	var err error
	switch {
	case *checkMetrics != "":
		err = runCheckMetrics(stdout, *checkMetrics)
	case *checkTrace != "":
		err = runCheckTrace(stdout, *checkTrace)
	case *replay != "":
		err = runReplay(stdout, *replay)
	default:
		err = runAttach(stdout, *attach, *interval, *frames)
	}
	if err != nil {
		fmt.Fprintln(stderr, "starmon:", err)
		return 1
	}
	return 0
}

// fetch reads an artifact from a URL or a local file.
func fetch(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(src)
}

func runCheckMetrics(w io.Writer, src string) error {
	data, err := fetch(src)
	if err != nil {
		return err
	}
	families, err := export.ValidateOpenMetrics(data)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	fmt.Fprintf(w, "openmetrics ok: %d metric families\n", families)
	return nil
}

func runCheckTrace(w io.Writer, src string) error {
	data, err := fetch(src)
	if err != nil {
		return err
	}
	complete, err := export.ValidateTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	if complete == 0 {
		return fmt.Errorf("%s: trace has no complete events", src)
	}
	fmt.Fprintf(w, "trace ok: %d complete events\n", complete)
	return nil
}

// runReplay folds an NDJSON event log into a one-screen summary:
// record and level counts, per-event tallies, and the repair-outcome
// breakdown the sim and core event streams carry.
func runReplay(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadLog(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(w, "0 records")
		return nil
	}

	levels := map[string]int{}
	events := map[string]int{}
	outcomes := map[string]int{}
	for _, r := range recs {
		levels[r.Level]++
		events[r.Event]++
		if out, ok := r.Fields["outcome"].(string); ok {
			outcomes[r.Event+":"+out]++
		}
	}
	span := time.Duration(recs[len(recs)-1].T - recs[0].T)
	fmt.Fprintf(w, "%d records spanning %v\n", len(recs), span)
	fmt.Fprintf(w, "levels: %s\n", joinCounts(levels))
	fmt.Fprintln(w, "events:")
	for _, name := range sortedKeys(events) {
		fmt.Fprintf(w, "  %-24s %d\n", name, events[name])
	}
	if len(outcomes) > 0 {
		fmt.Fprintln(w, "repair outcomes:")
		for _, name := range sortedKeys(outcomes) {
			fmt.Fprintf(w, "  %-24s %d\n", name, outcomes[name])
		}
	}
	return nil
}

// runAttach polls the target's /metrics endpoint and renders one frame
// per interval: counter rates against the previous frame, gauge values,
// and summary quantiles.
func runAttach(w io.Writer, target string, interval time.Duration, frames int) error {
	if !strings.HasPrefix(target, "http://") && !strings.HasPrefix(target, "https://") {
		target = "http://" + target
	}
	url := strings.TrimSuffix(target, "/") + "/metrics"
	if interval <= 0 {
		interval = time.Second
	}

	var prev map[string]float64
	for frame := 1; frames == 0 || frame <= frames; frame++ {
		data, err := fetch(url)
		if err != nil {
			return err
		}
		if _, err := export.ValidateOpenMetrics(data); err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
		cur, kinds := parseExposition(data)
		renderFrame(w, frame, interval, cur, prev, kinds)
		prev = cur
		if frames != 0 && frame == frames {
			break
		}
		time.Sleep(interval)
	}
	return nil
}

// parseExposition reads an OpenMetrics text page into sample values
// keyed by full sample name (labels included) plus each family's TYPE.
func parseExposition(data []byte) (samples map[string]float64, kinds map[string]string) {
	samples = map[string]float64{}
	kinds = map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line == "# EOF" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				kinds[fields[2]] = fields[3]
			}
			continue
		}
		// `name{labels} value [timestamp]` or `name value [timestamp]`.
		cut := strings.LastIndex(line, "} ")
		var name, rest string
		if cut >= 0 {
			name, rest = line[:cut+1], strings.TrimSpace(line[cut+2:])
		} else {
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				continue
			}
			name, rest = line[:sp], strings.TrimSpace(line[sp+1:])
		}
		val := rest
		if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			val = rest[:sp]
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			samples[name] = v
		}
	}
	return samples, kinds
}

// renderFrame prints one monitor frame. Counter families get a
// per-second rate once a previous frame exists; everything else shows
// its current value. The prof.RuntimeSampler gauges (runtime_*
// families) render as their own section with human units, separating
// process health from algorithm metrics.
func renderFrame(w io.Writer, frame int, interval time.Duration, cur, prev map[string]float64, kinds map[string]string) {
	fmt.Fprintf(w, "frame %d (%d samples)\n", frame, len(cur))
	var runtimeNames []string
	for _, name := range sortedKeys(cur) {
		if strings.HasPrefix(name, "runtime_") {
			runtimeNames = append(runtimeNames, name)
			continue
		}
		family := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			family = name[:i]
		}
		kind := kinds[strings.TrimSuffix(family, "_total")]
		if kind == "" {
			kind = kinds[family]
		}
		switch kind {
		case "counter":
			line := fmt.Sprintf("  %-44s %12.0f", name, cur[name])
			if prev != nil {
				rate := (cur[name] - prev[name]) / interval.Seconds()
				line += fmt.Sprintf("  %+.1f/s", rate)
			}
			fmt.Fprintln(w, line)
		case "summary":
			fmt.Fprintf(w, "  %-44s %12g\n", name, cur[name])
		default:
			fmt.Fprintf(w, "  %-44s %12.0f\n", name, cur[name])
		}
	}
	if len(runtimeNames) > 0 {
		fmt.Fprintln(w, "  runtime:")
		for _, name := range runtimeNames {
			fmt.Fprintf(w, "    %-42s %12s\n", name, formatRuntimeValue(name, cur[name]))
		}
	}
}

// formatRuntimeValue picks human units from the gauge name: byte
// gauges render as KiB/MiB/GiB, *_ns gauges as durations, and counts
// stay integers.
func formatRuntimeValue(name string, v float64) string {
	switch {
	case strings.Contains(name, "bytes"):
		return formatBytes(v)
	case strings.HasSuffix(name, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func joinCounts(m map[string]int) string {
	var parts []string
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
