// Command starsweep regenerates the evaluation tables and series of
// EXPERIMENTS.md: each experiment validates one quantitative claim of
// the paper (see DESIGN.md's experiment index).
//
// Usage:
//
//	starsweep [-exp T1|T2|T3|T4|T5|T6|F1|F2|F3|all] [-maxn N] [-seeds K]
//	          [-quick] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (T1..T6, F1..F3, or all)")
		maxN     = flag.Int("maxn", 8, "largest star-graph dimension to sweep")
		seeds    = flag.Int("seeds", 10, "random fault sets per configuration")
		quick    = flag.Bool("quick", false, "shrink the sweep for a fast smoke run")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	)
	flag.Parse()

	cfg := harness.SweepConfig{MaxN: *maxN, Seeds: *seeds, Quick: *quick}
	if !*markdown {
		if err := harness.Run(os.Stdout, *exp, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "starsweep:", err)
			os.Exit(1)
		}
		return
	}

	cfg = cfg.Defaults()
	for _, e := range harness.All() {
		if *exp != "all" && e.ID != *exp {
			continue
		}
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starsweep:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Markdown(os.Stdout)
		}
	}
}
