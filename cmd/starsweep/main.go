// Command starsweep regenerates the evaluation tables and series of
// EXPERIMENTS.md: each experiment validates one quantitative claim of
// the paper (see DESIGN.md's experiment index).
//
// Usage:
//
//	starsweep [-exp T1..T6|F1..F8|A1|all] [-maxn N] [-seeds K]
//	          [-quick] [-markdown | -json]
//	          [-debug-addr addr] [-metrics-json path]
//	          [-series-json path] [-series-period d] [-trace-out path]
//	          [-cpuprofile path] [-memprofile path]
//
// -json emits the selected tables as one JSON document,
// {"experiments": [...]}, for downstream tooling (scripts/bench.sh
// archives the quick F2 sweep this way). -debug-addr serves expvar,
// pprof and an OpenMetrics endpoint (/metrics) during the sweep;
// -metrics-json dumps per-experiment timing spans (harness.exp.<ID>)
// and the embedder's phase metrics when the sweep finishes.
// -series-json samples the registry every -series-period (default 1s)
// into ring-buffered time series and dumps them as JSON; -trace-out
// writes the sweep's spans as a Chrome trace_event JSON file loadable
// in Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (T1..T6, F1..F8, A1, or all)")
		maxN     = flag.Int("maxn", 8, "largest star-graph dimension to sweep")
		seeds    = flag.Int("seeds", 10, "random fault sets per configuration")
		quick    = flag.Bool("quick", false, "shrink the sweep for a fast smoke run")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit the tables as a JSON document instead of aligned text")

		debugAddr    = flag.String("debug-addr", "", "serve expvar, pprof and /metrics on this address (e.g. localhost:6060)")
		metricsJSON  = flag.String("metrics-json", "", "write the sweep's metrics as JSON to this file")
		seriesJSON   = flag.String("series-json", "", "sample the registry periodically and write the time series as JSON to this file")
		seriesPeriod = flag.Duration("series-period", time.Second, "sampling period for -series-json")
		traceOut     = flag.String("trace-out", "", "write the sweep's spans as Chrome trace_event JSON (Perfetto) to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a phase-labeled CPU profile of the sweep to this file")
		memProfile   = flag.String("memprofile", "", "write a post-sweep heap profile to this file")
		flightDump   = flag.String("flight-dump", "", "write the flight-recorder post-mortem bundle to this directory (on error and at exit)")
	)
	flag.Parse()

	if *markdown && *jsonOut {
		fatal(fmt.Errorf("-markdown and -json are mutually exclusive"))
	}

	if *cpuProfile != "" {
		stop, err := prof.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := prof.WriteHeapProfile(*memProfile); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
		}()
	}

	var (
		reg    *obs.Registry
		rec    *obs.Recorder
		flight *obs.FlightRecorder
		rtStop func()
	)
	if *debugAddr != "" || *metricsJSON != "" || *seriesJSON != "" || *traceOut != "" || *flightDump != "" {
		reg = obs.NewRegistry()
		rec = obs.NewRecorder(256)
		reg.SetSink(rec)
		reg.PublishExpvar("starsweep")
		// Runtime health gauges (runtime_*) ride along with the sweep
		// metrics on /metrics, -metrics-json and -series-json.
		rtStop = prof.NewRuntimeSampler(reg).Start(time.Second)
		// The black box: an event log feeding only the flight recorder
		// (starsweep has no -events-out), so a mid-sweep embed error
		// leaves its recent telemetry behind when -flight-dump is set.
		reg.SetEventLog(obs.NewEventLog(io.Discard, obs.LevelDebug, reg.Clock()))
		flight = obs.NewFlightRecorder(reg, 512)
		if *flightDump != "" {
			flight.SetAutoDump(*flightDump, export.FlightBundleWriter(flight))
		}
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		srv.Handle("/metrics", export.MetricsHandler(reg))
		srv.Handle("/debug/flight", export.FlightHandler(flight))
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars (pprof under /debug/pprof/, OpenMetrics under /metrics)\n", srv.Addr())
	}
	var (
		sampler     *export.Sampler
		stopSampler func()
	)
	if *seriesJSON != "" {
		sampler = export.NewSampler(reg, export.SamplerConfig{Period: *seriesPeriod})
		stopSampler = sampler.Start()
	}

	cfg := harness.SweepConfig{MaxN: *maxN, Seeds: *seeds, Quick: *quick, Obs: reg}

	switch {
	case *jsonOut:
		tables, err := harness.Collect(*exp, cfg)
		if err != nil {
			fatal(err)
		}
		doc := struct {
			Experiments []*harness.Table `json:"experiments"`
		}{Experiments: tables}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	case *markdown:
		tables, err := harness.Collect(*exp, cfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Markdown(os.Stdout)
		}
	default:
		if err := harness.Run(os.Stdout, *exp, cfg); err != nil {
			fatal(err)
		}
	}

	if rtStop != nil {
		// stop takes a final sample so the dumps below reflect
		// end-of-sweep runtime state even for sub-second sweeps.
		rtStop()
	}
	if reg != nil && *metricsJSON != "" {
		if err := reg.WriteJSONFile(*metricsJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsJSON)
	}
	if sampler != nil {
		// stop takes one final sample so short sweeps still record their
		// end state even when they finish inside the first period.
		stopSampler()
		if err := sampler.WriteJSONFile(*seriesJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "series written to %s\n", *seriesJSON)
	}
	if reg != nil && *traceOut != "" {
		if err := export.WriteTraceFile(*traceOut, rec.Events()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if flight != nil && *flightDump != "" {
		if err := flight.Dump(*flightDump, export.FlightBundleWriter(flight)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flight bundle written to %s\n", *flightDump)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starsweep:", err)
	os.Exit(1)
}
