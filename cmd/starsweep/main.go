// Command starsweep regenerates the evaluation tables and series of
// EXPERIMENTS.md: each experiment validates one quantitative claim of
// the paper (see DESIGN.md's experiment index).
//
// Usage:
//
//	starsweep [-exp T1..T6|F1..F7|A1|all] [-maxn N] [-seeds K]
//	          [-quick] [-markdown | -json]
//	          [-debug-addr addr] [-metrics-json path]
//
// -json emits the selected tables as one JSON document,
// {"experiments": [...]}, for downstream tooling (scripts/bench.sh
// archives the quick F2 sweep this way). -debug-addr serves expvar and
// pprof during the sweep; -metrics-json dumps per-experiment timing
// spans (harness.exp.<ID>) and the embedder's phase metrics when the
// sweep finishes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (T1..T6, F1..F7, A1, or all)")
		maxN     = flag.Int("maxn", 8, "largest star-graph dimension to sweep")
		seeds    = flag.Int("seeds", 10, "random fault sets per configuration")
		quick    = flag.Bool("quick", false, "shrink the sweep for a fast smoke run")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit the tables as a JSON document instead of aligned text")

		debugAddr   = flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		metricsJSON = flag.String("metrics-json", "", "write the sweep's metrics as JSON to this file")
	)
	flag.Parse()

	if *markdown && *jsonOut {
		fatal(fmt.Errorf("-markdown and -json are mutually exclusive"))
	}

	var reg *obs.Registry
	if *debugAddr != "" || *metricsJSON != "" {
		reg = obs.NewRegistry()
		reg.SetSink(obs.NewRecorder(256))
		reg.PublishExpvar("starsweep")
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}

	cfg := harness.SweepConfig{MaxN: *maxN, Seeds: *seeds, Quick: *quick, Obs: reg}

	switch {
	case *jsonOut:
		tables, err := harness.Collect(*exp, cfg)
		if err != nil {
			fatal(err)
		}
		doc := struct {
			Experiments []*harness.Table `json:"experiments"`
		}{Experiments: tables}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	case *markdown:
		tables, err := harness.Collect(*exp, cfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Markdown(os.Stdout)
		}
	default:
		if err := harness.Run(os.Stdout, *exp, cfg); err != nil {
			fatal(err)
		}
	}

	if reg != nil && *metricsJSON != "" {
		if err := reg.WriteJSONFile(*metricsJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsJSON)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starsweep:", err)
	os.Exit(1)
}
