// Command starviz renders embedding structures for inspection: the
// whole star graph, the R4 super-ring of one embedding (blocks as
// nodes, colored by fault status), or the path through a single block —
// as Graphviz DOT on stdout, ready for `dot -Tsvg`.
//
// Usage:
//
//	starviz -n 4                        # S_4 itself as DOT
//	starviz -n 6 -random 3 -mode ring   # R4 super-ring of an embedding
//	starviz -n 6 -random 3 -mode block  # detail of the first faulty block
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/star"
	"repro/internal/substar"
)

func main() {
	var (
		n      = flag.Int("n", 4, "star-graph dimension")
		random = flag.Int("random", 0, "number of random vertex faults")
		seed   = flag.Int64("seed", 1, "fault seed")
		mode   = flag.String("mode", "graph", "graph | ring | block")
	)
	flag.Parse()

	fs := faults.NewSet(*n)
	if *random > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for _, v := range faults.RandomVertices(*n, *random, rng).Vertices() {
			fs.AddVertex(v)
		}
	}

	switch *mode {
	case "graph":
		emitGraph(*n, fs)
	case "ring":
		emitSuperRing(*n, fs)
	case "block":
		emitBlock(*n, fs)
	default:
		fmt.Fprintf(os.Stderr, "starviz: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

// emitGraph writes all of S_n (sensible for n <= 5).
func emitGraph(n int, fs *faults.Set) {
	if n > 5 {
		fmt.Fprintln(os.Stderr, "starviz: -mode graph only renders n <= 5 (n! nodes)")
		os.Exit(1)
	}
	g := star.New(n)
	fmt.Println("graph S {")
	fmt.Println("  layout=neato; node [shape=circle, fontsize=9];")
	g.Vertices(func(v perm.Code) bool {
		attrs := ""
		if fs.HasVertex(v) {
			attrs = ", style=filled, fillcolor=indianred"
		} else if g.PartiteSet(v) == 1 {
			attrs = ", style=filled, fillcolor=lightsteelblue"
		}
		fmt.Printf("  %q [label=%q%s];\n", v.StringN(n), v.StringN(n), attrs)
		return true
	})
	g.Vertices(func(v perm.Code) bool {
		g.VisitNeighbors(v, func(w perm.Code, dim int) bool {
			if v < w {
				fmt.Printf("  %q -- %q [label=%d, fontsize=7];\n", v.StringN(n), w.StringN(n), dim)
			}
			return true
		})
		return true
	})
	fmt.Println("}")
}

// emitSuperRing writes the R4 supervertex ring of an embedding, blocks
// colored by fault count.
func emitSuperRing(n int, fs *faults.Set) {
	if n < 5 {
		fmt.Fprintln(os.Stderr, "starviz: -mode ring needs n >= 5")
		os.Exit(1)
	}
	positions, _ := fs.SeparatingPositions()
	r4, err := core.BuildR4(n, fs, core.BuildSpec{
		Positions:      positions,
		SpreadFaults:   true,
		HealthyBorders: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "starviz:", err)
		os.Exit(1)
	}
	fmt.Println("digraph R4 {")
	fmt.Println("  layout=circo; node [shape=box, fontsize=9];")
	m := r4.Len()
	for i := 0; i < m; i++ {
		p := r4.At(i)
		color := "white"
		if fs.CountIn(p) > 0 {
			color = "indianred"
		}
		fmt.Printf("  b%d [label=%q, style=filled, fillcolor=%s];\n", i, patternLabel(p), color)
	}
	for i := 0; i < m; i++ {
		fmt.Printf("  b%d -> b%d;\n", i, (i+1)%m)
	}
	fmt.Println("}")
}

// emitBlock writes one block's interior: its 24 vertices, the embedded
// ring's path through it highlighted, the fault marked.
func emitBlock(n int, fs *faults.Set) {
	if n < 5 {
		fmt.Fprintln(os.Stderr, "starviz: -mode block needs n >= 5")
		os.Exit(1)
	}
	eng, err := core.NewEmbedder(n, core.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "starviz:", err)
		os.Exit(1)
	}
	plan, err := eng.Embed(fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starviz:", err)
		os.Exit(1)
	}
	res := plan.Result()
	// Reconstruct the block containing the first fault (or the block of
	// the first ring vertex when fault-free).
	anchor := res.Ring[0]
	if fs.NumVertices() > 0 {
		anchor = fs.Vertices()[0]
	}
	pat := substar.PatternOf(n, anchor, res.Positions)
	g := star.New(n)

	onRing := map[perm.Code]int{}
	for i, v := range res.Ring {
		onRing[v] = i
	}
	fmt.Println("graph Block {")
	fmt.Printf("  label=%q; layout=neato; node [shape=circle, fontsize=8];\n", patternLabel(pat))
	verts := pat.Vertices(nil)
	for _, v := range verts {
		attrs := ""
		_, used := onRing[v]
		switch {
		case fs.HasVertex(v):
			attrs = ", style=filled, fillcolor=indianred"
		case used:
			attrs = ", style=filled, fillcolor=palegreen"
		}
		fmt.Printf("  %q [label=%q%s];\n", v.StringN(n), v.StringN(n), attrs)
	}
	for _, v := range verts {
		g.VisitNeighbors(v, func(w perm.Code, _ int) bool {
			if !pat.Contains(w) || w < v {
				return true
			}
			style := "dotted"
			if i, ok := onRing[v]; ok {
				if j, ok2 := onRing[w]; ok2 {
					d := i - j
					if d < 0 {
						d = -d
					}
					if d == 1 || d == len(res.Ring)-1 {
						style = "bold"
					}
				}
			}
			fmt.Printf("  %q -- %q [style=%s];\n", v.StringN(n), w.StringN(n), style)
			return true
		})
	}
	fmt.Println("}")
}

func patternLabel(p substar.Pattern) string { return p.String() }
