// Command starserve runs the embedding service: the star-graph ring
// embedder behind an HTTP API, one warm engine pool per dimension,
// with the request-scoped observability pipeline from internal/serve.
//
// Usage:
//
//	starserve -addr localhost:8080                  # serve 3 <= n <= 7
//	starserve -addr :0 -min-n 4 -max-n 6 -pool 4    # sized pools
//	starserve -addr :0 -max-inflight 64 -max-queue 8
//	starserve -load -target http://host:8080        # fault-churn load
//	starserve -load -requests 500 -out BENCH_serve.json  # self-hosted
//
// The API routes are GET /embed, /repair and /ring (query parameters
// n, fv, fe, v, best_effort — see internal/serve.ParseRequest); the
// operational surface is /healthz, /readyz (503 while warming or
// saturated), /metrics (OpenMetrics with the serve.* RED families) and
// /debug/flight (the flight-recorder bundle as a tar). Every response
// echoes the X-Star-Trace id the request's server-side timeline is
// filed under; pass that id to starmon -postmortem over the bundle
// from -flight-dump to reconstruct a client-reported slow or failed
// request. Any 5xx auto-dumps the bundle while the process still
// serves.
//
// -load switches to the built-in load generator: workers replay the
// lifecycle of a degrading S_n instance (embed, then one /repair per
// fresh random fault until the n-3 budget is spent, then reset), with
// /ring materializations every -ring-every requests and /chaos faults
// every -chaos-every. With no -target it boots a private in-process
// server first. -out writes the per-route latency/error/shed summary
// as the BENCH_serve.json artifact scripts/bench.sh records.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so tests can drive both modes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("starserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
		minN        = fs.Int("min-n", 3, "smallest served dimension")
		maxN        = fs.Int("max-n", 7, "largest served dimension")
		poolSize    = fs.Int("pool", 2, "embedder engines per dimension")
		maxInflight = fs.Int("max-inflight", 0, "admission limit across routes; beyond it requests shed with 429 (0 = off)")
		maxQueue    = fs.Int("max-queue", 0, "callers queued per engine pool; beyond it requests shed with 429 (0 = off)")
		workers     = fs.Int("workers", 0, "parallel block-routing workers per engine (0 = GOMAXPROCS)")
		bestEffort  = fs.Bool("best-effort", false, "serve fault sets beyond the n-3 budget by default")
		verify      = fs.Bool("verify-repairs", false, "re-verify the ring after every /repair")
		chaos       = fs.Bool("chaos", false, "expose /chaos, a deterministic 500 for overload drills")
		dur         = fs.Duration("dur", 0, "serve this long, then exit cleanly (0 = until SIGINT/SIGTERM)")

		eventsOut  = fs.String("events-out", "", "append structured NDJSON events (serve.request, core.*) to this file")
		flightDump = fs.String("flight-dump", "", "flight-recorder bundle directory: auto-dumped on any 5xx and at exit")

		load       = fs.Bool("load", false, "run the fault-churn load generator instead of serving")
		target     = fs.String("target", "", "with -load: base URL of the server (empty boots a private in-process one)")
		loadN      = fs.Int("load-n", 6, "with -load: churned dimension")
		requests   = fs.Int("requests", 200, "with -load: total requests across workers")
		conc       = fs.Int("concurrency", 4, "with -load: worker count")
		seed       = fs.Int64("seed", 1, "with -load: churn/trace seed")
		ringEvery  = fs.Int("ring-every", 0, "with -load: every k-th request is a full /ring materialization")
		chaosEvery = fs.Int("chaos-every", 0, "with -load: every k-th request is a /chaos injected failure")
		out        = fs.String("out", "", "with -load: write the BENCH_serve.json artifact here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := serve.Config{
		MinN: *minN, MaxN: *maxN, PoolSize: *poolSize,
		MaxInflight: *maxInflight, MaxQueue: *maxQueue,
		BestEffort: *bestEffort, Workers: *workers,
		VerifyRepairs: *verify, Chaos: *chaos,
	}
	if *load {
		return runLoad(stdout, stderr, cfg, loadOpts{
			target: *target, n: *loadN, requests: *requests, conc: *conc,
			seed: *seed, ringEvery: *ringEvery, chaosEvery: *chaosEvery,
			out: *out, eventsOut: *eventsOut, flightDump: *flightDump,
		})
	}
	return runServe(stdout, stderr, cfg, *addr, *dur, *eventsOut, *flightDump)
}

// telemetry is the service registry with its sink, event log, flight
// recorder and runtime sampler attached — everything serve.New expects
// to find pre-wired on Config.Obs.
type telemetry struct {
	reg    *obs.Registry
	flight *obs.FlightRecorder

	events     *os.File
	flightDump string
	rtStop     func()
}

var publishOnce sync.Once

// startTelemetry wires the registry. The flight recorder is always on
// (it backs /debug/flight and the middleware's 5xx hook); -flight-dump
// additionally arms auto-dump and a final dump at close.
func startTelemetry(eventsOut, flightDump string) (*telemetry, error) {
	t := &telemetry{flightDump: flightDump}
	t.reg = obs.NewRegistry()
	t.reg.SetSink(obs.NewRecorder(256))
	publishOnce.Do(func() { t.reg.PublishExpvar("starserve") })
	logDst := io.Writer(io.Discard)
	if eventsOut != "" {
		f, err := os.Create(eventsOut)
		if err != nil {
			return nil, err
		}
		t.events = f
		logDst = f
	}
	t.reg.SetEventLog(obs.NewEventLog(logDst, obs.LevelDebug, t.reg.Clock()))
	t.flight = obs.NewFlightRecorder(t.reg, 512)
	if flightDump != "" {
		t.flight.SetAutoDump(flightDump, export.FlightBundleWriter(t.flight))
	}
	t.rtStop = prof.NewRuntimeSampler(t.reg).Start(time.Second)
	return t, nil
}

// close stops the sampler, leaves the final flight bundle, and flushes
// the event log file.
func (t *telemetry) close() error {
	t.rtStop()
	if t.flightDump != "" {
		if err := t.flight.Dump(t.flightDump, export.FlightBundleWriter(t.flight)); err != nil {
			return err
		}
	}
	if t.events != nil {
		return t.events.Close()
	}
	return nil
}

// runServe boots the service and blocks until SIGINT/SIGTERM (or -dur
// elapses), then shuts down gracefully.
func runServe(stdout, stderr io.Writer, cfg serve.Config, addr string, dur time.Duration, eventsOut, flightDump string) int {
	tel, err := startTelemetry(eventsOut, flightDump)
	if err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		return 1
	}
	cfg.Obs = tel.reg
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		tel.close()
		return 1
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		tel.close()
		return 1
	}
	// Serve immediately — /readyz says 503 until the warm-up below
	// finishes, which is exactly what a balancer should see.
	fmt.Fprintf(stdout, "starserve listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if err := s.Warm(); err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		srv.Close()
		tel.close()
		return 1
	}
	fmt.Fprintf(stdout, "pools warm: n in [%d,%d], %d engines each\n", cfg.MinN, cfg.MaxN, cfg.PoolSize)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if dur > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, dur)
		defer tcancel()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "starserve:", err)
		tel.close()
		return 1
	case <-ctx.Done():
	}
	shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shcancel()
	if err := srv.Shutdown(shctx); err != nil {
		fmt.Fprintln(stderr, "starserve: shutdown:", err)
	}
	if err := tel.close(); err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "starserve: bye")
	return 0
}

type loadOpts struct {
	target                string
	n, requests, conc     int
	seed                  int64
	ringEvery, chaosEvery int
	out                   string
	eventsOut, flightDump string
}

// runLoad drives the fault-churn generator. With no target it boots a
// private in-process server on an ephemeral port first (with /chaos
// routed whenever the churn will hit it), so `starserve -load -out
// BENCH_serve.json` is a self-contained benchmark.
func runLoad(stdout, stderr io.Writer, cfg serve.Config, o loadOpts) int {
	lcfg := serve.LoadConfig{
		Target: o.target, N: o.n, Requests: o.requests, Concurrency: o.conc,
		Seed: o.seed, RingEvery: o.ringEvery, ChaosEvery: o.chaosEvery,
	}
	if o.target == "" {
		tel, err := startTelemetry(o.eventsOut, o.flightDump)
		if err != nil {
			fmt.Fprintln(stderr, "starserve:", err)
			return 1
		}
		defer tel.close()
		cfg.Obs = tel.reg
		cfg.Chaos = cfg.Chaos || o.chaosEvery > 0
		if o.n < cfg.MinN || o.n > cfg.MaxN {
			cfg.MinN, cfg.MaxN = o.n, o.n
		}
		s, err := serve.New(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "starserve:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "starserve:", err)
			return 1
		}
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		if err := s.Warm(); err != nil {
			fmt.Fprintln(stderr, "starserve:", err)
			return 1
		}
		lcfg.Target = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "self-hosted server on %s\n", lcfg.Target)
	}

	res, err := serve.RunLoad(lcfg)
	if err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "load done: %d requests, %d workers, n=%d, seed=%d\n",
		res.Requests, res.Concurrency, res.N, res.Seed)
	for _, route := range []string{"embed", "repair", "ring", "chaos"} {
		st := res.Routes[route]
		if st == nil {
			continue
		}
		fmt.Fprintf(stdout, "  /%-6s %5d requests  errors=%d shed=%d  p50=%v p95=%v max=%v\n",
			route, st.Count, st.Errors, st.Shed,
			time.Duration(st.P50NS), time.Duration(st.P95NS), time.Duration(st.MaxNS))
	}

	w := io.Writer(stdout)
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fmt.Fprintln(stderr, "starserve:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := res.BenchJSON(w); err != nil {
		fmt.Fprintln(stderr, "starserve:", err)
		return 1
	}
	if o.out != "" {
		fmt.Fprintf(stdout, "load artifact written to %s\n", o.out)
	}
	return 0
}
