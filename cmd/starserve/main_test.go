package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// syncBuffer lets the test poll run's output while run still writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var announceRE = regexp.MustCompile(`starserve listening on (http://\S+)`)

// TestRunServe boots the real binary loop on an ephemeral port, drives
// the API and ops endpoints over TCP, and lets -dur wind it down.
func TestRunServe(t *testing.T) {
	var out syncBuffer
	var errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-min-n", "4", "-max-n", "4",
			"-dur", "2s",
		}, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := announceRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no announce line:\n%s\n%s", out.String(), errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/embed?n=4&fv=2134")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/embed status %d", resp.StatusCode)
	}
	if resp.Header.Get(serve.TraceHeader) == "" {
		t.Error("response missing the trace header echo")
	}
	var body struct {
		Length int `json:"length"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Length == 0 {
		t.Error("embed response has no ring length")
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "pools warm") {
		t.Errorf("missing warm-up line:\n%s", out.String())
	}
}

// TestRunLoadSelfHosted exercises `starserve -load` with no -target:
// it must boot its own server, churn it, and leave the BENCH artifact.
func TestRunLoadSelfHosted(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out syncBuffer
	var errOut bytes.Buffer
	code := run([]string{
		"-load", "-load-n", "4", "-requests", "20", "-concurrency", "2",
		"-ring-every", "7", "-chaos-every", "10", "-out", outPath,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"self-hosted server on http://", "load done: 20 requests", "/embed", "/repair"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]*serve.LoadResult
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	res := doc["serve_load"]
	if res == nil {
		t.Fatalf("artifact missing serve_load: %s", data)
	}
	var total int64
	for _, st := range res.Routes {
		total += st.Count
	}
	if total != 20 {
		t.Errorf("artifact tallies %d requests, want 20: %s", total, data)
	}
	// /chaos was only implicitly enabled by -chaos-every; its injected
	// failures must be visible as route errors.
	if ch := res.Routes["chaos"]; ch == nil || ch.Errors != ch.Count {
		t.Errorf("chaos route not exercised: %+v", res.Routes)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out syncBuffer
	var errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-min-n", "2"}, &out, &errOut); code != 1 {
		t.Errorf("bad dimension range: exit %d, want 1", code)
	}
	if code := run([]string{"-load", "-load-n", "99"}, &out, &errOut); code != 1 {
		t.Errorf("bad load dimension: exit %d, want 1", code)
	}
}
