// Command starverify validates a persisted ring embedding against a
// fault set: structure (simple, closed, adjacency over real star-graph
// edges), healthiness, and an optional minimum length. It is the
// trust-nothing gate a scheduler runs before mapping a job onto a
// stored embedding.
//
// Usage:
//
//	starring -n 6 -random 3 -save ring.srg
//	starverify -ring ring.srg -fv <faults> [-minlen 714]
//
// Exit status 0 means the embedding is safe to use.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/ringio"
	"repro/internal/star"
)

func main() {
	var (
		ringPath = flag.String("ring", "", "ring file written by starring -save (binary ringio format)")
		fv       = flag.String("fv", "", "comma-separated faulty vertices to verify against")
		minLen   = flag.Int("minlen", 0, "required minimum ring length (0 = structure only)")
		quiet    = flag.Bool("q", false, "suppress output; report via exit status only")
	)
	flag.Parse()

	if *ringPath == "" {
		fatal(fmt.Errorf("need -ring"))
	}
	f, err := os.Open(*ringPath)
	if err != nil {
		fatal(err)
	}
	n, ring, err := ringio.ReadBinary(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	fs := faults.NewSet(n)
	if *fv != "" {
		for _, s := range strings.Split(*fv, ",") {
			if err := fs.AddVertexString(strings.TrimSpace(s)); err != nil {
				fatal(err)
			}
		}
	}

	if err := check.Ring(star.New(n), ring, fs, *minLen); err != nil {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "starverify: REJECTED: %v\n", err)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("starverify: ok — S_%d ring of %d vertices, %d faults avoided, min length %d satisfied\n",
			n, len(ring), fs.NumVertices(), *minLen)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starverify:", err)
	os.Exit(1)
}
