// Command starverify validates a persisted ring embedding against a
// fault set: structure (simple, closed, adjacency over real star-graph
// edges), healthiness, and an optional minimum length. It is the
// trust-nothing gate a scheduler runs before mapping a job onto a
// stored embedding.
//
// Usage:
//
//	starring -n 6 -random 3 -save ring.srg
//	starverify -ring ring.srg -fv <faults> [-minlen 714]
//
// Exit status 0 means the embedding is safe to use, 1 that the ring was
// rejected, and 2 that the ring could not be loaded (missing/corrupt
// file, bad flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/ringio"
	"repro/internal/star"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: it parses args, loads and verifies the
// ring, and returns the process exit code (0 ok, 1 rejected, 2 load or
// usage failure).
func run(args []string, stdout, stderr io.Writer) int {
	fset := flag.NewFlagSet("starverify", flag.ContinueOnError)
	fset.SetOutput(stderr)
	var (
		ringPath = fset.String("ring", "", "ring file written by starring -save (binary ringio format)")
		fv       = fset.String("fv", "", "comma-separated faulty vertices to verify against")
		minLen   = fset.Int("minlen", 0, "required minimum ring length (0 = structure only)")
		quiet    = fset.Bool("q", false, "suppress output; report via exit status only")
	)
	if err := fset.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "starverify:", err)
		return 2
	}
	if *ringPath == "" {
		return fail(fmt.Errorf("need -ring"))
	}
	f, err := os.Open(*ringPath)
	if err != nil {
		return fail(err)
	}
	n, ring, err := ringio.ReadBinary(f)
	f.Close()
	if err != nil {
		return fail(err)
	}

	fs := faults.NewSet(n)
	if *fv != "" {
		for _, s := range strings.Split(*fv, ",") {
			if err := fs.AddVertexString(strings.TrimSpace(s)); err != nil {
				return fail(err)
			}
		}
	}

	if err := check.Ring(star.New(n), ring, fs, *minLen); err != nil {
		if !*quiet {
			fmt.Fprintf(stderr, "starverify: REJECTED: %v\n", err)
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "starverify: ok — S_%d ring of %d vertices, %d faults avoided, min length %d satisfied\n",
			n, len(ring), fs.NumVertices(), *minLen)
	}
	return 0
}
