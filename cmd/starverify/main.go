// Command starverify validates a persisted ring embedding against a
// fault set: structure (simple, closed, adjacency over real star-graph
// edges), healthiness, and an optional minimum length. It is the
// trust-nothing gate a scheduler runs before mapping a job onto a
// stored embedding.
//
// Usage:
//
//	starring -n 6 -random 3 -save ring.srg
//	starverify -ring ring.srg -fv <faults> [-minlen 714]
//	starverify -ring big.srs -stream -minlen 3628800
//
// -stream verifies through check.RingStream at constant memory: the
// ring is decoded and checked one vertex at a time (distinctness via a
// rank bitset), so a multi-million-vertex file from `starring -stream
// -save` never has to fit in RAM. It accepts both the chunked stream
// format and the flat legacy format.
//
// Exit status 0 means the embedding is safe to use, 1 that the ring was
// rejected, and 2 that the ring could not be loaded (missing/corrupt
// file, bad flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/ringio"
	"repro/internal/star"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: it parses args, loads and verifies the
// ring, and returns the process exit code (0 ok, 1 rejected, 2 load or
// usage failure).
func run(args []string, stdout, stderr io.Writer) int {
	fset := flag.NewFlagSet("starverify", flag.ContinueOnError)
	fset.SetOutput(stderr)
	var (
		ringPath = fset.String("ring", "", "ring file written by starring -save (binary ringio format)")
		fv       = fset.String("fv", "", "comma-separated faulty vertices to verify against")
		minLen   = fset.Int("minlen", 0, "required minimum ring length (0 = structure only)")
		stream   = fset.Bool("stream", false, "verify via check.RingStream at constant memory (accepts stream and legacy formats)")
		quiet    = fset.Bool("q", false, "suppress output; report via exit status only")
	)
	if err := fset.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "starverify:", err)
		return 2
	}
	if *ringPath == "" {
		return fail(fmt.Errorf("need -ring"))
	}
	f, err := os.Open(*ringPath)
	if err != nil {
		return fail(err)
	}
	defer f.Close()

	var (
		n       int
		ring    []perm.Code // materialized mode only
		sr      *ringio.StreamReader
		ringLen int
	)
	if *stream {
		sr, err = ringio.ReadBinaryStream(f)
		if err != nil {
			return fail(err)
		}
		n, ringLen = sr.N(), sr.Len()
	} else {
		n, ring, err = ringio.ReadBinary(f)
		if err != nil {
			return fail(err)
		}
		ringLen = len(ring)
	}

	fs := faults.NewSet(n)
	if *fv != "" {
		for _, s := range strings.Split(*fv, ",") {
			if err := fs.AddVertexString(strings.TrimSpace(s)); err != nil {
				return fail(err)
			}
		}
	}

	var verr error
	if *stream {
		// Decode and check fused vertex-by-vertex: the file is rejected
		// on the first structural or format error without ever holding
		// the cycle.
		_, verr = check.RingStream(star.New(n), sr.Next, fs, *minLen)
		if rerr := sr.Err(); rerr != nil {
			// A decode failure surfaces to the stream checker as a short
			// ring, but the root cause (truncation, bad rank) is the
			// loader's verdict: exit 2 like any other corrupt file.
			return fail(rerr)
		}
	} else {
		verr = check.Ring(star.New(n), ring, fs, *minLen)
	}
	if verr != nil {
		if !*quiet {
			fmt.Fprintf(stderr, "starverify: REJECTED: %v\n", verr)
		}
		return 1
	}
	if !*quiet {
		mode := ""
		if *stream {
			mode = " (streamed)"
		}
		fmt.Fprintf(stdout, "starverify: ok — S_%d ring of %d vertices, %d faults avoided, min length %d satisfied%s\n",
			n, ringLen, fs.NumVertices(), *minLen, mode)
	}
	return 0
}
