package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perm"
	"repro/internal/ringio"
)

// writeRing embeds a fault-free S_n ring and persists it for the CLI.
func writeRing(t *testing.T, n int) string {
	t.Helper()
	res, err := core.Embed(n, faults.NewSet(n), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring.srg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ringio.WriteBinary(f, n, res.Ring); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeStreamRing persists the same fault-free S_n ring in the chunked
// stream format, exercising the -stream decode path end to end.
func writeStreamRing(t *testing.T, n int) string {
	t.Helper()
	res, err := core.Embed(n, faults.NewSet(n), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring.srs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() (perm.Code, bool) {
		if i >= len(res.Ring) {
			var zero perm.Code
			return zero, false
		}
		v := res.Ring[i]
		i++
		return v, true
	}
	if err := ringio.WriteBinaryStream(f, n, len(res.Ring), next); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVerdicts(t *testing.T) {
	ring := writeRing(t, 4)
	sring := writeStreamRing(t, 4)
	garbage := filepath.Join(t.TempDir(), "garbage.srg")
	if err := os.WriteFile(garbage, []byte("not a ring"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stream cut mid-body: valid header, missing ranks and terminator.
	whole, err := os.ReadFile(sring)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(t.TempDir(), "trunc.srs")
	if err := os.WriteFile(truncated, whole[:len(whole)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		args   []string
		code   int
		stdout string // required substring, "" = must be empty
		stderr string
	}{
		{"ok", []string{"-ring", ring}, 0, "starverify: ok", ""},
		{"ok quiet", []string{"-ring", ring, "-q"}, 0, "", ""},
		{"minlen satisfied", []string{"-ring", ring, "-minlen", "24"}, 0, "min length 24 satisfied", ""},
		{"rejected: fault on ring", []string{"-ring", ring, "-fv", "1234"}, 1, "", "REJECTED"},
		{"rejected quiet", []string{"-ring", ring, "-fv", "1234", "-q"}, 1, "", ""},
		{"rejected: minlen too high", []string{"-ring", ring, "-minlen", "25"}, 1, "", "REJECTED"},
		{"stream ok", []string{"-ring", sring, "-stream"}, 0, "(streamed)", ""},
		{"stream ok legacy format", []string{"-ring", ring, "-stream"}, 0, "starverify: ok", ""},
		{"stream minlen satisfied", []string{"-ring", sring, "-stream", "-minlen", "24"}, 0, "min length 24 satisfied", ""},
		{"stream rejected: fault on ring", []string{"-ring", sring, "-stream", "-fv", "1234"}, 1, "", "REJECTED"},
		{"stream rejected: minlen too high", []string{"-ring", sring, "-stream", "-minlen", "25"}, 1, "", "REJECTED"},
		{"stream truncated file", []string{"-ring", truncated, "-stream"}, 2, "", "starverify:"},
		{"stream corrupt file", []string{"-ring", garbage, "-stream"}, 2, "", "starverify:"},
		{"missing -ring", nil, 2, "", "need -ring"},
		{"missing file", []string{"-ring", filepath.Join(t.TempDir(), "nope.srg")}, 2, "", "starverify:"},
		{"corrupt file", []string{"-ring", garbage}, 2, "", "starverify:"},
		{"bad flag", []string{"-wat"}, 2, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := run(tc.args, &out, &errw); code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errw.String())
			}
			if tc.stdout == "" && out.Len() != 0 {
				t.Errorf("unexpected stdout: %q", out.String())
			}
			if tc.stdout != "" && !strings.Contains(out.String(), tc.stdout) {
				t.Errorf("stdout %q missing %q", out.String(), tc.stdout)
			}
			if tc.stderr != "" && !strings.Contains(errw.String(), tc.stderr) {
				t.Errorf("stderr %q missing %q", errw.String(), tc.stderr)
			}
		})
	}
}
