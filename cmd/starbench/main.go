// Command starbench is the perf-regression gate: it normalizes the
// repository's benchmark artifacts into versioned records, compares
// two records benchstat-style, and validates the run-over-run
// trajectory file.
//
// Usage:
//
//	starbench -record out.json [-label L] [-append traj.ndjson] artifact...
//	starbench -compare old.json new.json [-threshold 0.30] [-minns 1ms] [-v]
//	starbench -check traj.ndjson
//
// -record ingests each artifact by sniffing its format — starsweep
// -json documents (BENCH_embed.json, BENCH_repair.json), obs registry
// snapshots (BENCH_obs.json), or go test -bench text (BENCH_*.txt) —
// and writes one normalized record; -append additionally appends the
// record as an NDJSON line to the trajectory history.
//
// -compare joins two records on metric name and classifies every
// shared metric as ok / faster / REGRESSED against the relative
// -threshold (default 30%); nanosecond metrics below -minns on both
// sides never gate. Exit status 1 means at least one metric regressed
// (the CI perf-gate leg keys off this), 2 means usage or I/O error.
//
// -check validates every line of a trajectory file against the record
// schema, so a corrupt append fails CI instead of silently poisoning
// later comparisons.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("starbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record     = fs.String("record", "", "normalize the artifact arguments into a record at this path")
		label      = fs.String("label", "", "label stored in the record (default: current time, RFC 3339)")
		appendPath = fs.String("append", "", "with -record: also append the record to this NDJSON trajectory file")
		compare    = fs.Bool("compare", false, "compare two record files (old new); exit 1 on regression")
		threshold  = fs.Float64("threshold", bench.DefaultThreshold, "relative change that counts as a regression")
		minNS      = fs.Duration("minns", time.Duration(bench.DefaultMinNS), "noise floor: timings below this on both sides never gate")
		check      = fs.String("check", "", "validate an NDJSON trajectory file and exit")
		verbose    = fs.Bool("v", false, "with -compare: print every metric, not just changed ones")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, on := range []bool{*record != "", *compare, *check != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "starbench: exactly one of -record, -compare, -check is required")
		fs.Usage()
		return 2
	}

	switch {
	case *check != "":
		return runCheck(*check, stdout, stderr)
	case *compare:
		return runCompare(fs.Args(), *threshold, *minNS, *verbose, stdout, stderr)
	default:
		return runRecord(*record, *label, *appendPath, fs.Args(), stdout, stderr)
	}
}

func runRecord(out, label, appendPath string, artifacts []string, stdout, stderr io.Writer) int {
	if len(artifacts) == 0 {
		fmt.Fprintln(stderr, "starbench: -record needs at least one artifact file")
		return 2
	}
	if label == "" {
		label = time.Now().UTC().Format(time.RFC3339)
	}
	rec := bench.NewRecord(label)
	for _, path := range artifacts {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "starbench:", err)
			return 2
		}
		if err := bench.Ingest(rec, path, data); err != nil {
			fmt.Fprintln(stderr, "starbench:", err)
			return 2
		}
	}
	if err := bench.WriteRecordFile(out, rec); err != nil {
		fmt.Fprintln(stderr, "starbench:", err)
		return 2
	}
	fmt.Fprintf(stdout, "recorded %d metrics from %d artifacts to %s\n",
		len(rec.Metrics), len(artifacts), out)
	if appendPath != "" {
		if err := bench.AppendNDJSONFile(appendPath, rec); err != nil {
			fmt.Fprintln(stderr, "starbench:", err)
			return 2
		}
		fmt.Fprintf(stdout, "appended to %s\n", appendPath)
	}
	return 0
}

func runCompare(args []string, threshold float64, minNS time.Duration, verbose bool, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "starbench: -compare needs exactly two record files: old new")
		return 2
	}
	old, err := bench.ReadRecordFile(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "starbench:", err)
		return 2
	}
	cur, err := bench.ReadRecordFile(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "starbench:", err)
		return 2
	}
	cmp := bench.Compare(old, cur, bench.Options{Threshold: threshold, MinNS: float64(minNS)})
	cmp.Fprint(stdout, verbose)
	if len(cmp.Regressions()) > 0 {
		fmt.Fprintf(stderr, "starbench: performance regression: %s vs %s\n", args[1], args[0])
		return 1
	}
	return 0
}

func runCheck(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "starbench:", err)
		return 2
	}
	defer f.Close()
	n, err := bench.CheckNDJSON(f)
	if err != nil {
		fmt.Fprintln(stderr, "starbench:", err)
		return 2
	}
	if n == 0 {
		fmt.Fprintf(stderr, "starbench: %s has no records\n", path)
		return 2
	}
	fmt.Fprintf(stdout, "trajectory ok: %d records in %s\n", n, path)
	return 0
}
