package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchText = `BenchmarkEmbedTheorem1-8  100  12000000 ns/op  500000 B/op  1200 allocs/op
BenchmarkObsDisabled-8  100000000  8.8 ns/op  0 B/op  0 allocs/op
`

const benchTextSlow = `BenchmarkEmbedTheorem1-8  100  24000000 ns/op  500000 B/op  1200 allocs/op
BenchmarkObsDisabled-8  100000000  8.8 ns/op  0 B/op  0 allocs/op
`

// TestRecordCompareGate drives the full acceptance flow: record two
// runs, compare identical records (exit 0), then a synthetic 2x
// slowdown (exit 1 with a REGRESSED verdict on the slowed metric).
func TestRecordCompareGate(t *testing.T) {
	dir := t.TempDir()
	fast := writeFile(t, dir, "fast.txt", benchText)
	slow := writeFile(t, dir, "slow.txt", benchTextSlow)
	baseRec := filepath.Join(dir, "base.json")
	slowRec := filepath.Join(dir, "slow.json")

	var out, errOut strings.Builder
	if code := run([]string{"-record", baseRec, "-label", "base", fast}, &out, &errOut); code != 0 {
		t.Fatalf("record exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Fatalf("record output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-compare", baseRec, baseRec}, &out, &errOut); code != 0 {
		t.Fatalf("identical records exit %d: %s\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Fatalf("identical compare output: %s", out.String())
	}

	if code := run([]string{"-record", slowRec, "-label", "slow", slow}, &out, &errOut); code != 0 {
		t.Fatalf("record slow exit %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	code := run([]string{"-compare", baseRec, slowRec}, &out, &errOut)
	if code != 1 {
		t.Fatalf("2x slowdown exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") ||
		!strings.Contains(out.String(), "BenchmarkEmbedTheorem1/ns_op") {
		t.Fatalf("compare output missing verdict:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "performance regression") {
		t.Fatalf("stderr missing regression notice: %s", errOut.String())
	}
}

// TestThresholdFlag loosens the gate past the synthetic slowdown.
func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	fast := writeFile(t, dir, "fast.txt", benchText)
	slow := writeFile(t, dir, "slow.txt", benchTextSlow)
	baseRec := filepath.Join(dir, "base.json")
	slowRec := filepath.Join(dir, "slow.json")
	var out, errOut strings.Builder
	run([]string{"-record", baseRec, fast}, &out, &errOut)
	run([]string{"-record", slowRec, slow}, &out, &errOut)
	if code := run([]string{"-compare", "-threshold", "1.5", baseRec, slowRec}, &out, &errOut); code != 0 {
		t.Fatalf("threshold 150%% still gated: exit %d\n%s", code, errOut.String())
	}
}

func TestAppendAndCheck(t *testing.T) {
	dir := t.TempDir()
	artifact := writeFile(t, dir, "bench.txt", benchText)
	rec := filepath.Join(dir, "rec.json")
	traj := filepath.Join(dir, "traj.ndjson")

	var out, errOut strings.Builder
	for i := 0; i < 2; i++ {
		if code := run([]string{"-record", rec, "-append", traj, artifact}, &out, &errOut); code != 0 {
			t.Fatalf("append run %d exit: %s", i, errOut.String())
		}
	}
	out.Reset()
	if code := run([]string{"-check", traj}, &out, &errOut); code != 0 {
		t.Fatalf("check exit: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "trajectory ok: 2 records") {
		t.Fatalf("check output: %s", out.String())
	}

	bad := writeFile(t, dir, "bad.ndjson", "{\"schema\":1,\"metrics\":{\"m\":{\"value\":1,\"unit\":\"x\"}}}\nnot json\n")
	errOut.Reset()
	if code := run([]string{"-check", bad}, &out, &errOut); code != 2 {
		t.Fatalf("corrupt trajectory accepted (exit %d)", code)
	}
	empty := writeFile(t, dir, "empty.ndjson", "")
	if code := run([]string{"-check", empty}, &out, &errOut); code != 2 {
		t.Fatalf("empty trajectory accepted (exit %d)", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	cases := [][]string{
		{},                            // no mode
		{"-record", "x", "-compare"},  // two modes
		{"-compare", "only-one.json"}, // wrong arity
		{"-record", "out.json"},       // no artifacts
		{"-compare", "missing-a.json", "missing-b.json"}, // unreadable
	}
	for _, args := range cases {
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestIngestMixedArtifacts(t *testing.T) {
	dir := t.TempDir()
	sweep := writeFile(t, dir, "sweep.json", `{"experiments":[{"id":"F2",
	  "headers":["n","time"],"rows":[[{"text":"6","num":6},{"text":"1ms","ns":1000000}]]}]}`)
	snap := writeFile(t, dir, "obs.json", `{"histograms":{"core.phase.total":
	  {"count":3,"sum_ns":3,"p50_ns":100000,"p95_ns":400000}}}`)
	text := writeFile(t, dir, "bench.txt", benchText)
	rec := filepath.Join(dir, "rec.json")

	var out, errOut strings.Builder
	if code := run([]string{"-record", rec, sweep, snap, text}, &out, &errOut); code != 0 {
		t.Fatalf("mixed record exit: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "from 3 artifacts") {
		t.Fatalf("record output: %s", out.String())
	}
	if code := run([]string{"-compare", "-v", rec, rec}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare exit: %s", errOut.String())
	}
	for _, want := range []string{"F2/n=6/time", "obs/core.phase.total/p95_ns", "BenchmarkEmbedTheorem1/ns_op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose compare missing %s:\n%s", want, out.String())
		}
	}
}
