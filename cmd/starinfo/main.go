// Command starinfo prints structural facts about S_n and answers
// distance/routing queries — a small window into the substrate the
// embedder runs on.
//
// Usage:
//
//	starinfo -n 5                        # graph summary
//	starinfo -n 5 -from 12345 -to 32145  # distance + a shortest path
//	starinfo -n 4 -neighbors 1234        # adjacency of one vertex
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perm"
	"repro/internal/star"
)

func main() {
	var (
		n         = flag.Int("n", 5, "star-graph dimension")
		from      = flag.String("from", "", "source vertex for a routing query")
		to        = flag.String("to", "", "target vertex for a routing query")
		neighbors = flag.String("neighbors", "", "list the neighbors of this vertex")
		disjoint  = flag.Bool("disjoint", false, "with -from/-to: also print n-1 node-disjoint paths")
	)
	flag.Parse()

	g := star.New(*n)
	fmt.Printf("S_%d: %d vertices, %d edges, degree %d, diameter %d, bipartite (two sides of %d)\n",
		*n, g.Order(), g.Size(), g.Degree(), g.Diameter(), g.Order()/2)

	if *neighbors != "" {
		v := parse(*neighbors, *n)
		fmt.Printf("neighbors of %s (parity %d):\n", v.StringN(*n), g.PartiteSet(v))
		g.VisitNeighbors(v, func(w perm.Code, dim int) bool {
			fmt.Printf("  dim %d: %s\n", dim, w.StringN(*n))
			return true
		})
	}

	if *from != "" && *to != "" {
		u, v := parse(*from, *n), parse(*to, *n)
		d := g.Distance(u, v)
		path := g.Route(u, v)
		fmt.Printf("distance(%s, %s) = %d\n", u.StringN(*n), v.StringN(*n), d)
		fmt.Print("shortest path:")
		for _, p := range path {
			fmt.Printf(" %s", p.StringN(*n))
		}
		fmt.Println()
		if len(path)-1 != d {
			fmt.Fprintln(os.Stderr, "starinfo: internal: route length disagrees with distance formula")
			os.Exit(1)
		}
		if *disjoint {
			paths, err := g.DisjointPaths(u, v)
			if err != nil {
				fmt.Fprintln(os.Stderr, "starinfo:", err)
				os.Exit(1)
			}
			fmt.Printf("%d node-disjoint paths (connectivity %d):\n", len(paths), g.Connectivity())
			for i, p := range paths {
				fmt.Printf("  path %d (%d hops):", i+1, len(p)-1)
				for _, w := range p {
					fmt.Printf(" %s", w.StringN(*n))
				}
				fmt.Println()
			}
		}
	}
}

func parse(s string, n int) perm.Code {
	p, err := perm.Parse(s)
	if err != nil || p.N() != n {
		fmt.Fprintf(os.Stderr, "starinfo: %q is not a vertex of S_%d\n", s, n)
		os.Exit(1)
	}
	return perm.Pack(p)
}
