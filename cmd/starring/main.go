// Command starring embeds one fault-free ring instance and reports it.
//
// Usage:
//
//	starring -n 6 -fv 213456,312456                 # explicit faults
//	starring -n 7 -random 4 -seed 1                 # random faults
//	starring -n 6 -fe "123456-213456"               # an edge fault
//	starring -n 6 -random 3 -algo tseng             # run a baseline
//	starring -n 6 -random 3 -print                  # dump the ring
//	starring -n 7 -faults 4 -metrics-json m.json    # dump run telemetry
//
// -debug-addr serves expvar (/debug/vars, registry "starring"),
// pprof (/debug/pprof/) and an OpenMetrics endpoint (/metrics) while
// the run lasts; -metrics-json leaves a machine-readable record of
// per-phase durations, S4 cache activity, junction backtracks and
// worker utilization (see the README's Observability section).
// -trace-out writes the run's phase spans as a Chrome trace_event
// JSON file loadable in Perfetto; -events-out streams structured
// NDJSON events (core.embed, core.repair) to a file; -hold keeps the
// process (and its debug server) alive for the given duration after
// the run so an external scraper can pull /metrics.
//
// -flight-dump keeps the always-on flight recorder's bundle: recent
// events, completed spans and a metrics snapshot land in the given
// directory at exit — and immediately on an embed error, so a failed
// run still leaves its post-mortem (render it with starmon
// -postmortem; the live form is served at /debug/flight as a tar).
//
// -cpuprofile captures a CPU profile whose samples carry phase labels
// (phase=embed, phase=splice, ...) — `go tool pprof -tagfocus
// phase=embed` isolates one pipeline phase; -memprofile writes a
// post-run heap profile. When any telemetry flag enables the
// registry, a prof.RuntimeSampler also publishes runtime_* gauges
// (heap, GC pauses, goroutines, scheduling latency) every second.
//
// The embedded ring is always re-verified; the command exits nonzero on
// any failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/prof"
	"repro/internal/perm"
	"repro/internal/ringio"
	"repro/internal/star"
)

func main() {
	var (
		n       = flag.Int("n", 6, "star-graph dimension (>= 3)")
		fv      = flag.String("fv", "", "comma-separated faulty vertices, e.g. 213456,312456")
		fe      = flag.String("fe", "", "comma-separated faulty edges as u-v pairs, e.g. 123456-213456")
		random  = flag.Int("random", 0, "add this many uniformly random vertex faults")
		faultsN = flag.Int("faults", 0, "alias of -random: add this many uniformly random vertex faults")
		seed    = flag.Int64("seed", 1, "seed for -random/-faults")
		algo    = flag.String("algo", "paper", "paper | tseng | latifi")
		pathSrc = flag.String("path-from", "", "embed a longest s-t path instead of a ring: source vertex")
		pathDst = flag.String("path-to", "", "path mode: target vertex")
		print   = flag.Bool("print", false, "print the full ring, one vertex per line")
		save    = flag.String("save", "", "write the ring to this file (binary ringio format)")
		best    = flag.Bool("best-effort", false, "accept fault sets beyond the n-3 budget (no guarantee)")
		stream  = flag.Bool("stream", false, "paper algo only: never materialize the ring — embed, verify, -print and -save through the block cursor at O(#blocks) memory (required for n >= 10)")
		workers = flag.Int("workers", 0, "parallel block-routing workers (0 = GOMAXPROCS)")

		debugAddr   = flag.String("debug-addr", "", "serve expvar, pprof and /metrics on this address (e.g. localhost:6060)")
		metricsJSON = flag.String("metrics-json", "", "write the run's metrics as JSON to this file")
		traceOut    = flag.String("trace-out", "", "write the run's spans as Chrome trace_event JSON (Perfetto) to this file")
		eventsOut   = flag.String("events-out", "", "write structured NDJSON events to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a phase-labeled CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a post-run heap profile to this file")
		flightDump  = flag.String("flight-dump", "", "write the flight-recorder post-mortem bundle to this directory (on error and at exit)")
		hold        = flag.Duration("hold", 0, "keep the process alive this long after the run (for /metrics scrapers)")
	)
	flag.Parse()

	fs := faults.NewSet(*n)
	if *fv != "" {
		for _, s := range strings.Split(*fv, ",") {
			if err := fs.AddVertexString(strings.TrimSpace(s)); err != nil {
				fatal(err)
			}
		}
	}
	if *fe != "" {
		for _, s := range strings.Split(*fe, ",") {
			uv := strings.SplitN(strings.TrimSpace(s), "-", 2)
			if len(uv) != 2 {
				fatal(fmt.Errorf("bad edge %q, want u-v", s))
			}
			u, err := perm.Parse(uv[0])
			if err != nil {
				fatal(err)
			}
			v, err := perm.Parse(uv[1])
			if err != nil {
				fatal(err)
			}
			if err := fs.AddEdge(perm.Pack(u), perm.Pack(v)); err != nil {
				fatal(err)
			}
		}
	}
	if k := *random + *faultsN; k > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for _, v := range faults.RandomVertices(*n, k, rng).Vertices() {
			fs.AddVertex(v)
		}
	}

	tel := startTelemetry(*debugAddr, *metricsJSON, *traceOut, *eventsOut, *cpuProfile, *memProfile, *flightDump, *hold)

	cfg := core.Config{Workers: *workers, BestEffort: *best, Streaming: *stream, Obs: tel.reg}

	if *pathSrc != "" || *pathDst != "" {
		runPathMode(*n, fs, *pathSrc, *pathDst, cfg, *print)
		tel.finish()
		return
	}
	if *stream && *algo != "paper" {
		fatal(fmt.Errorf("-stream supports only -algo paper"))
	}

	var (
		plan      *core.Plan
		ring      []perm.Code
		ringLen   int
		guarantee int
		extra     string
	)
	switch *algo {
	case "paper":
		eng, err := core.NewEmbedder(*n, cfg)
		if err != nil {
			fatal(err)
		}
		plan, err = eng.Embed(fs)
		if err != nil {
			fatal(err)
		}
		res := plan.Result()
		ring, ringLen, guarantee = res.Ring, res.Len(), res.Guarantee
		extra = fmt.Sprintf("blocks=%d faulty-blocks=%d positions=%v upper-bound=%d",
			res.Blocks, res.FaultyBlocks, res.Positions, res.UpperBound)
	case "tseng":
		res, err := baseline.Tseng(*n, fs, cfg)
		if err != nil {
			fatal(err)
		}
		ring, ringLen, guarantee = res.Ring, len(res.Ring), res.Guarantee
	case "latifi":
		res, err := baseline.Latifi(*n, fs, cfg)
		if err != nil {
			fatal(err)
		}
		ring, ringLen, guarantee = res.Ring, len(res.Ring), res.Guarantee
		extra = fmt.Sprintf("cluster=%v m=%d", res.Cluster, res.M)
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	streaming := plan != nil && plan.Streaming()

	g := star.New(*n)
	if streaming {
		// Never materialize: re-verify through a fresh cursor at
		// O(#blocks) memory, the same path the embedder's own
		// self-verification took.
		if _, err := check.RingStream(g, plan.Cursor().Next, fs, 0); err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
	} else if err := check.Ring(g, ring, fs, 0); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}

	fmt.Printf("S_%d: %d vertices, |Fv|=%d, |Fe|=%d\n", *n, g.Order(), fs.NumVertices(), fs.NumEdges())
	mode := ""
	if streaming {
		mode = " mode=stream"
	}
	fmt.Printf("algorithm=%s ring length=%d guarantee=%d verified=ok%s\n", *algo, ringLen, guarantee, mode)
	if extra != "" {
		fmt.Println(extra)
	}
	if *print {
		w := bufio.NewWriter(os.Stdout)
		for next := ringNext(plan, ring, streaming); ; {
			v, ok := next()
			if !ok {
				break
			}
			fmt.Fprintln(w, v.StringN(*n))
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if streaming {
			// Chunked stream format: the ring goes to disk one block at a
			// time, so an n=10 save holds 3.6M vertices on disk but never
			// in memory.
			err = ringio.WriteBinaryStream(f, *n, ringLen, plan.Cursor().Next)
		} else {
			err = ringio.WriteBinary(f, *n, ring)
		}
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d-vertex ring to %s\n", ringLen, *save)
	}
	tel.finish()
}

// ringNext returns an iterator over the embedded ring: a fresh cursor
// in streaming mode, a slice walk otherwise.
func ringNext(plan *core.Plan, ring []perm.Code, streaming bool) func() (perm.Code, bool) {
	if streaming {
		return plan.Cursor().Next
	}
	i := 0
	return func() (perm.Code, bool) {
		if i >= len(ring) {
			var zero perm.Code
			return zero, false
		}
		v := ring[i]
		i++
		return v, true
	}
}

// telemetry bundles the run's optional instrumentation: the registry
// wired into the embedder, the span recorder behind -trace-out, the
// NDJSON event stream and the debug server.
type telemetry struct {
	reg    *obs.Registry
	rec    *obs.Recorder
	flight *obs.FlightRecorder
	events *os.File
	srv    *obs.DebugServer

	cpuStop func() error
	rtStop  func()

	metricsJSON, traceOut  string
	cpuProfile, memProfile string
	flightDump             string
	hold                   time.Duration
}

// startTelemetry wires up whatever the flags asked for; with no
// telemetry flags set the zero handle is inert and finish is a no-op.
func startTelemetry(debugAddr, metricsJSON, traceOut, eventsOut, cpuProfile, memProfile, flightDump string, hold time.Duration) *telemetry {
	t := &telemetry{metricsJSON: metricsJSON, traceOut: traceOut,
		cpuProfile: cpuProfile, memProfile: memProfile,
		flightDump: flightDump, hold: hold}
	if cpuProfile != "" {
		stop, err := prof.StartCPUProfile(cpuProfile)
		if err != nil {
			fatal(err)
		}
		t.cpuStop = stop
	}
	if debugAddr == "" && metricsJSON == "" && traceOut == "" && eventsOut == "" && flightDump == "" {
		return t
	}
	t.reg = obs.NewRegistry()
	t.rec = obs.NewRecorder(256)
	t.reg.SetSink(t.rec)
	t.reg.PublishExpvar("starring")
	// Runtime health (heap, GC, scheduler) sampled alongside the
	// algorithm metrics, so /metrics scrapes and the -metrics-json dump
	// carry the runtime_* gauges too.
	t.rtStop = prof.NewRuntimeSampler(t.reg).Start(time.Second)
	if eventsOut != "" {
		f, err := os.Create(eventsOut)
		if err != nil {
			fatal(err)
		}
		t.events = f
		t.reg.SetEventLog(obs.NewEventLog(f, obs.LevelDebug, t.reg.Clock()))
	} else {
		// The flight recorder tees off the event log, so keep one running
		// even with no -events-out destination: records go only to the
		// black box.
		t.reg.SetEventLog(obs.NewEventLog(io.Discard, obs.LevelDebug, t.reg.Clock()))
	}
	// The black box is always on once telemetry is: recent events and
	// spans stay available for /debug/flight, and an embed/repair error
	// auto-dumps the post-mortem bundle when -flight-dump is set.
	t.flight = obs.NewFlightRecorder(t.reg, 512)
	if flightDump != "" {
		t.flight.SetAutoDump(flightDump, export.FlightBundleWriter(t.flight))
	}
	if debugAddr != "" {
		srv, err := obs.StartDebugServer(debugAddr)
		if err != nil {
			fatal(err)
		}
		srv.Handle("/metrics", export.MetricsHandler(t.reg))
		srv.Handle("/debug/flight", export.FlightHandler(t.flight))
		t.srv = srv
		fmt.Printf("debug server listening on http://%s/debug/vars (pprof under /debug/pprof/, OpenMetrics under /metrics)\n", srv.Addr())
	}
	return t
}

// finish writes the requested artifacts, then honors -hold so an
// external scraper can still reach the debug server afterwards.
func (t *telemetry) finish() {
	// Stop the CPU profile before -hold so idle scraping time is not
	// profiled alongside the run.
	if t.cpuStop != nil {
		if err := t.cpuStop(); err != nil {
			fatal(err)
		}
		fmt.Printf("cpu profile written to %s\n", t.cpuProfile)
	}
	if t.memProfile != "" {
		if err := prof.WriteHeapProfile(t.memProfile); err != nil {
			fatal(err)
		}
		fmt.Printf("heap profile written to %s\n", t.memProfile)
	}
	if t.reg != nil {
		if t.rtStop != nil {
			// stop takes a final sample, so the JSON dump below reflects
			// end-of-run runtime state even for sub-second runs.
			t.rtStop()
		}
		if t.metricsJSON != "" {
			if err := t.reg.WriteJSONFile(t.metricsJSON); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", t.metricsJSON)
		}
		if t.traceOut != "" {
			if err := export.WriteTraceFile(t.traceOut, t.rec.Events()); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s\n", t.traceOut)
		}
		if t.flightDump != "" {
			if err := t.flight.Dump(t.flightDump, export.FlightBundleWriter(t.flight)); err != nil {
				fatal(err)
			}
			fmt.Printf("flight bundle written to %s\n", t.flightDump)
		}
		if t.events != nil {
			if err := t.events.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if t.hold > 0 {
		fmt.Printf("holding for %v\n", t.hold)
		time.Sleep(t.hold)
	}
	if t.srv != nil {
		t.srv.Close()
	}
}

// runPathMode embeds and reports a longest s-t path.
func runPathMode(n int, fs *faults.Set, from, to string, cfg core.Config, printAll bool) {
	parseV := func(str string) perm.Code {
		p, err := perm.Parse(str)
		if err != nil || p.N() != n {
			fatal(fmt.Errorf("%q is not a vertex of S_%d", str, n))
		}
		return perm.Pack(p)
	}
	if from == "" || to == "" {
		fatal(fmt.Errorf("path mode needs both -path-from and -path-to"))
	}
	s, t := parseV(from), parseV(to)
	res, err := core.EmbedPath(n, fs, s, t, cfg)
	if err != nil {
		fatal(err)
	}
	if err := check.Path(star.New(n), res.Path, fs); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	side := "different partite sets"
	if s.Parity(n) == t.Parity(n) {
		side = "same partite set"
	}
	fmt.Printf("S_%d longest path %s -> %s (%s): %d vertices (guarantee %d) verified=ok\n",
		n, s.StringN(n), t.StringN(n), side, res.Len(), res.Guarantee)
	if printAll {
		for _, v := range res.Path {
			fmt.Println(v.StringN(n))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starring:", err)
	os.Exit(1)
}
